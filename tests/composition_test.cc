#include "analysis/composition.h"

#include <gtest/gtest.h>

namespace pgm {
namespace {

Pattern Dna(const char* shorthand) {
  return *Pattern::Parse(shorthand, Alphabet::Dna());
}

TEST(CountCgTest, CountsOnlyCAndG) {
  EXPECT_EQ(*CountCg(Dna("ATAT")), 0);
  EXPECT_EQ(*CountCg(Dna("ACGT")), 2);
  EXPECT_EQ(*CountCg(Dna("GGGG")), 4);
  EXPECT_EQ(*CountCg(Dna("A")), 0);
  EXPECT_EQ(*CountCg(Dna("C")), 1);
}

TEST(CountCgTest, FailsWithoutCgInAlphabet) {
  Alphabet binary = *Alphabet::Create("01");
  Pattern p = *Pattern::Parse("0101", binary);
  EXPECT_FALSE(CountCg(p).ok());
}

TEST(ClassifyTest, Buckets) {
  EXPECT_EQ(*ClassifyDnaPattern(Dna("ATTA")), DnaPatternClass::kAtOnly);
  EXPECT_EQ(*ClassifyDnaPattern(Dna("ATCA")), DnaPatternClass::kSingleCg);
  EXPECT_EQ(*ClassifyDnaPattern(Dna("ATGG")), DnaPatternClass::kMultiCg);
  EXPECT_EQ(*ClassifyDnaPattern(Dna("CG")), DnaPatternClass::kMultiCg);
}

TEST(BucketTest, CountsByLength) {
  MiningResult result;
  auto add = [&result](const char* shorthand) {
    FrequentPattern fp;
    fp.pattern = Dna(shorthand);
    result.patterns.push_back(fp);
  };
  add("ATAT");
  add("TTTT");
  add("ACTT");
  add("CGAT");
  add("AT");  // different length: ignored for length-4 buckets
  LengthClassCounts counts = *BucketFrequentPatterns(result, 4);
  EXPECT_EQ(counts.length, 4);
  EXPECT_EQ(counts.at_only, 2u);
  EXPECT_EQ(counts.single_cg, 1u);
  EXPECT_EQ(counts.multi_cg, 1u);
  EXPECT_EQ(counts.total(), 4u);
}

TEST(BucketTest, EmptyResult) {
  MiningResult result;
  LengthClassCounts counts = *BucketFrequentPatterns(result, 8);
  EXPECT_EQ(counts.total(), 0u);
}

TEST(SelfRepeatingTest, DetectsUnitRepeats) {
  EXPECT_TRUE(IsSelfRepeating(Dna("ATATATATATA")));   // unit AT (paper)
  EXPECT_TRUE(IsSelfRepeating(Dna("GTAGTAGTAGT")));   // unit GTA (paper)
  EXPECT_TRUE(IsSelfRepeating(Dna("AAAA")));          // unit A
  EXPECT_TRUE(IsSelfRepeating(Dna("ACAC")));
  EXPECT_TRUE(IsSelfRepeating(Dna("ACGACG")));
}

TEST(SelfRepeatingTest, RejectsNonRepeats) {
  EXPECT_FALSE(IsSelfRepeating(Dna("ACGT")));
  EXPECT_FALSE(IsSelfRepeating(Dna("AATAT")));
  EXPECT_FALSE(IsSelfRepeating(Dna("A")));   // no second copy
  EXPECT_FALSE(IsSelfRepeating(Dna("AC")));  // unit would be the whole
}

TEST(SelfRepeatingTest, PartialLastCopyCounts) {
  // ATATA = AT AT A — every position matches one unit back, and the unit
  // fits at least twice.
  EXPECT_TRUE(IsSelfRepeating(Dna("ATATA")));
  // ACGAC has only 1 2/3 copies of ACG: not a self-repeat (the unit must
  // repeat fully at least twice).
  EXPECT_FALSE(IsSelfRepeating(Dna("ACGAC")));
  EXPECT_TRUE(IsSelfRepeating(Dna("ACGACGAC")));
}

TEST(HomopolymerTest, Detects) {
  EXPECT_TRUE(IsHomopolymer(Dna("GGGG"), 'G'));
  EXPECT_TRUE(IsHomopolymer(Dna("G"), 'G'));
  EXPECT_FALSE(IsHomopolymer(Dna("GGGG"), 'A'));
  EXPECT_FALSE(IsHomopolymer(Dna("GGAG"), 'G'));
  EXPECT_FALSE(IsHomopolymer(Dna("AAAA"), 'N'));  // not in alphabet
}

}  // namespace
}  // namespace pgm
