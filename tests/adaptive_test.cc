#include <gtest/gtest.h>

#include <set>

#include "core/miner.h"
#include "datagen/generators.h"
#include "datagen/planting.h"
#include "util/random.h"

namespace pgm {
namespace {

MinerConfig BaseConfig() {
  MinerConfig config;
  config.min_gap = 1;
  config.max_gap = 3;
  config.min_support_ratio = 0.01;
  config.start_length = 1;
  config.initial_n = 2;
  return config;
}

TEST(AdaptiveTest, FindsSameSetAsWorstCaseMpp) {
  for (std::uint64_t seed : {101u, 102u, 103u}) {
    Rng rng(seed);
    Sequence s = *UniformRandomSequence(120, Alphabet::Dna(), rng);
    MinerConfig config = BaseConfig();
    MiningResult adaptive = *MineAdaptive(s, config);
    MinerConfig worst = config;
    worst.user_n = -1;
    MiningResult mpp = *MineMpp(s, worst);
    ASSERT_EQ(adaptive.patterns.size(), mpp.patterns.size()) << "seed " << seed;
    for (std::size_t i = 0; i < adaptive.patterns.size(); ++i) {
      EXPECT_TRUE(adaptive.patterns[i].pattern == mpp.patterns[i].pattern);
      EXPECT_EQ(adaptive.patterns[i].support, mpp.patterns[i].support);
    }
  }
}

TEST(AdaptiveTest, IterationCountRecorded) {
  Rng rng(111);
  Sequence s = *UniformRandomSequence(80, Alphabet::Dna(), rng);
  MiningResult result = *MineAdaptive(s, BaseConfig());
  EXPECT_GE(result.adaptive_iterations, 1);
  EXPECT_LE(result.adaptive_iterations, 16);
}

TEST(AdaptiveTest, RefinesUpwardOnDenseData) {
  // A planted homopolymer run makes patterns longer than initial_n
  // frequent, so at least one refinement round is needed.
  Rng rng(121);
  Sequence s = *UniformRandomSequence(150, Alphabet::Dna(), rng);
  s = *PlantNoisyTandemRun(s, "A", 30, 70, 1.0, rng);
  MinerConfig config = BaseConfig();
  config.initial_n = 2;
  config.min_support_ratio = 0.0005;
  MiningResult result = *MineAdaptive(s, config);
  EXPECT_GT(result.longest_frequent_length, 2);
  EXPECT_GT(result.adaptive_iterations, 1);
  // The final n covers everything found.
  EXPECT_GE(result.n_used, result.longest_frequent_length);
}

TEST(AdaptiveTest, StableWhenInitialNAlreadyCovers) {
  Rng rng(131);
  Sequence s = *UniformRandomSequence(60, Alphabet::Dna(), rng);
  MinerConfig config = BaseConfig();
  config.initial_n = 30;  // will clamp to l1 and cover everything
  MiningResult result = *MineAdaptive(s, config);
  EXPECT_EQ(result.adaptive_iterations, 1);
}

TEST(AdaptiveTest, RespectsMaxIterations) {
  Rng rng(141);
  Sequence s = *UniformRandomSequence(100, Alphabet::Dna(), rng);
  MinerConfig config = BaseConfig();
  config.max_iterations = 1;
  MiningResult result = *MineAdaptive(s, config);
  EXPECT_EQ(result.adaptive_iterations, 1);
}

}  // namespace
}  // namespace pgm
