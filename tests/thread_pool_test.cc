// Unit tests for the fork-join ThreadPool behind the parallel level
// engine: full fan-out, inline execution for <= 1 threads, reuse across
// generations, and visibility of worker writes after Execute returns.

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

namespace pgm {
namespace {

TEST(ThreadPoolTest, RunsFunctionOnEveryWorker) {
  ThreadPool pool(4);
  ASSERT_EQ(pool.num_threads(), 4u);
  std::vector<std::atomic<int>> hits(4);
  pool.Execute([&](std::size_t worker) { hits[worker].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "worker " << i;
  }
}

TEST(ThreadPoolTest, SingleThreadRunsInlineOnCaller) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.Execute([&](std::size_t worker) {
    EXPECT_EQ(worker, 0u);
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPoolTest, ZeroThreadsBehavesLikeOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  int calls = 0;
  pool.Execute([&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ReusableAcrossManyGenerations) {
  ThreadPool pool(3);
  std::atomic<std::uint64_t> total{0};
  for (int round = 0; round < 100; ++round) {
    pool.Execute([&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 300u);
}

TEST(ThreadPoolTest, WorkerWritesVisibleAfterExecute) {
  ThreadPool pool(4);
  // Plain (non-atomic) writes to disjoint slots must be visible to the
  // caller once Execute returns — the join is a synchronization point.
  std::vector<int> slots(1024, 0);
  std::atomic<std::size_t> next{0};
  pool.Execute([&](std::size_t) {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= slots.size()) return;
      slots[i] = static_cast<int>(i) + 1;
    }
  });
  long long sum = std::accumulate(slots.begin(), slots.end(), 0LL);
  EXPECT_EQ(sum, 1024LL * 1025 / 2);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1 << 12);
  pool.ParallelFor(hits.size(), 64, [&](std::size_t begin, std::size_t end) {
    ASSERT_LE(end - begin, 64u);  // ranges never exceed the grain
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForRunsInlineWhenSerialOrSmall) {
  const std::thread::id caller = std::this_thread::get_id();
  // Serial pool: always inline, one whole-range call.
  {
    ThreadPool pool(1);
    int calls = 0;
    pool.ParallelFor(100, 8, [&](std::size_t begin, std::size_t end) {
      ++calls;
      EXPECT_EQ(begin, 0u);
      EXPECT_EQ(end, 100u);
      EXPECT_EQ(std::this_thread::get_id(), caller);
    });
    EXPECT_EQ(calls, 1);
  }
  // Parallel pool, loop no bigger than one grain: nothing to split.
  {
    ThreadPool pool(4);
    int calls = 0;
    pool.ParallelFor(8, 8, [&](std::size_t begin, std::size_t end) {
      ++calls;
      EXPECT_EQ(begin, 0u);
      EXPECT_EQ(end, 8u);
      EXPECT_EQ(std::this_thread::get_id(), caller);
    });
    EXPECT_EQ(calls, 1);
  }
}

TEST(ThreadPoolTest, ParallelForZeroIterationsIsANoOp) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, 16, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // Grain 0 is clamped to 1, not an infinite loop.
  std::atomic<int> visited{0};
  pool.ParallelFor(5, 0, [&](std::size_t begin, std::size_t end) {
    visited.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(visited.load(), 5);
}

TEST(ThreadPoolTest, ParallelForWritesVisibleAfterReturn) {
  // Disjoint plain writes through the range argument must be visible to
  // the caller on return — same join barrier as Execute.
  ThreadPool pool(4);
  std::vector<int> slots(4096, 0);
  pool.ParallelFor(slots.size(), 32, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      slots[i] = static_cast<int>(i) + 1;
    }
  });
  long long sum = std::accumulate(slots.begin(), slots.end(), 0LL);
  EXPECT_EQ(sum, 4096LL * 4097 / 2);
}

TEST(ThreadPoolTest, ResolveThreadCountClampsAndDetects) {
  EXPECT_EQ(ThreadPool::ResolveThreadCount(1), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(7), 7u);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(-5), 1u);
  EXPECT_GE(ThreadPool::ResolveThreadCount(0), 1u);  // hardware concurrency
}

TEST(ThreadPoolTest, DrainsCleanlyWhenDestroyedRightAfterExecute) {
  // The serve host tears its pool down as soon as the drain loop returns;
  // destruction immediately after the join must not lose or hang work.
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> calls{0};
    {
      ThreadPool pool(4);
      pool.Execute([&](std::size_t) { calls.fetch_add(1); });
    }
    EXPECT_EQ(calls.load(), 4) << "round " << round;
  }
}

TEST(ThreadPoolTest, GenerationsStaySequentiallyConsistent) {
  // Each Execute is a full barrier: work from generation g must observe
  // every write from generation g-1. A stale worker re-running an old
  // generation would break the monotone sequence below.
  ThreadPool pool(4);
  std::atomic<int> sequence{0};
  for (int g = 1; g <= 200; ++g) {
    pool.Execute([&, g](std::size_t worker) {
      if (worker == 0) {
        EXPECT_EQ(sequence.load(), g - 1);
        sequence.store(g);
      }
    });
  }
  EXPECT_EQ(sequence.load(), 200);
}

TEST(ThreadPoolTest, IndependentPoolsInterleaveWithoutCrosstalk) {
  // The service pool and a job's mining-internal pool coexist; alternating
  // generations between two pools must not corrupt either barrier.
  ThreadPool a(2);
  ThreadPool b(3);
  std::atomic<int> a_calls{0};
  std::atomic<int> b_calls{0};
  for (int round = 0; round < 50; ++round) {
    a.Execute([&](std::size_t) { a_calls.fetch_add(1); });
    b.Execute([&](std::size_t) { b_calls.fetch_add(1); });
  }
  EXPECT_EQ(a_calls.load(), 100);
  EXPECT_EQ(b_calls.load(), 150);
}

TEST(ThreadPoolTest, ReuseUnderContendedSharedState) {
  // Stress the generation protocol (TSan hunts the handshake): many short
  // generations hammering one cacheline from every worker.
  ThreadPool pool(8);
  std::atomic<std::uint64_t> total{0};
  for (int round = 0; round < 500; ++round) {
    pool.Execute([&](std::size_t worker) {
      total.fetch_add(worker + 1);
    });
  }
  EXPECT_EQ(total.load(), 500ull * (1 + 2 + 3 + 4 + 5 + 6 + 7 + 8));
}

}  // namespace
}  // namespace pgm
