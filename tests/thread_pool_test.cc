// Unit tests for the fork-join ThreadPool behind the parallel level
// engine: full fan-out, inline execution for <= 1 threads, reuse across
// generations, and visibility of worker writes after Execute returns.

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

namespace pgm {
namespace {

TEST(ThreadPoolTest, RunsFunctionOnEveryWorker) {
  ThreadPool pool(4);
  ASSERT_EQ(pool.num_threads(), 4u);
  std::vector<std::atomic<int>> hits(4);
  pool.Execute([&](std::size_t worker) { hits[worker].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "worker " << i;
  }
}

TEST(ThreadPoolTest, SingleThreadRunsInlineOnCaller) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.Execute([&](std::size_t worker) {
    EXPECT_EQ(worker, 0u);
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPoolTest, ZeroThreadsBehavesLikeOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  int calls = 0;
  pool.Execute([&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ReusableAcrossManyGenerations) {
  ThreadPool pool(3);
  std::atomic<std::uint64_t> total{0};
  for (int round = 0; round < 100; ++round) {
    pool.Execute([&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 300u);
}

TEST(ThreadPoolTest, WorkerWritesVisibleAfterExecute) {
  ThreadPool pool(4);
  // Plain (non-atomic) writes to disjoint slots must be visible to the
  // caller once Execute returns — the join is a synchronization point.
  std::vector<int> slots(1024, 0);
  std::atomic<std::size_t> next{0};
  pool.Execute([&](std::size_t) {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= slots.size()) return;
      slots[i] = static_cast<int>(i) + 1;
    }
  });
  long long sum = std::accumulate(slots.begin(), slots.end(), 0LL);
  EXPECT_EQ(sum, 1024LL * 1025 / 2);
}

TEST(ThreadPoolTest, ResolveThreadCountClampsAndDetects) {
  EXPECT_EQ(ThreadPool::ResolveThreadCount(1), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(7), 7u);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(-5), 1u);
  EXPECT_GE(ThreadPool::ResolveThreadCount(0), 1u);  // hardware concurrency
}

}  // namespace
}  // namespace pgm
