#include "util/saturating.h"

#include <gtest/gtest.h>

namespace pgm {
namespace {

TEST(SaturatingTest, AddWithoutOverflow) {
  EXPECT_EQ(SatAdd(1, 2), 3u);
  EXPECT_EQ(SatAdd(0, 0), 0u);
  EXPECT_EQ(SatAdd(kSaturatedCount - 1, 0), kSaturatedCount - 1);
}

TEST(SaturatingTest, AddClampsOnOverflow) {
  EXPECT_EQ(SatAdd(kSaturatedCount, 1), kSaturatedCount);
  EXPECT_EQ(SatAdd(kSaturatedCount - 1, 2), kSaturatedCount);
  EXPECT_EQ(SatAdd(kSaturatedCount, kSaturatedCount), kSaturatedCount);
}

TEST(SaturatingTest, AddReachesExactlyMax) {
  // 2^64-1 is the saturation sentinel, so an exact-max result is
  // indistinguishable from overflow by design.
  EXPECT_EQ(SatAdd(kSaturatedCount - 1, 1), kSaturatedCount);
}

TEST(SaturatingTest, MulWithoutOverflow) {
  EXPECT_EQ(SatMul(3, 4), 12u);
  EXPECT_EQ(SatMul(0, kSaturatedCount), 0u);
  EXPECT_EQ(SatMul(1, kSaturatedCount - 1), kSaturatedCount - 1);
}

TEST(SaturatingTest, MulClampsOnOverflow) {
  EXPECT_EQ(SatMul(1ULL << 32, 1ULL << 32), kSaturatedCount);
  EXPECT_EQ(SatMul(kSaturatedCount, 2), kSaturatedCount);
}

TEST(SaturatingTest, IsSaturated) {
  EXPECT_TRUE(IsSaturated(kSaturatedCount));
  EXPECT_FALSE(IsSaturated(kSaturatedCount - 1));
  EXPECT_FALSE(IsSaturated(0));
}

TEST(SaturatingTest, SaturationIsSticky) {
  std::uint64_t value = SatMul(1ULL << 40, 1ULL << 40);
  EXPECT_TRUE(IsSaturated(value));
  value = SatAdd(value, 1);
  EXPECT_TRUE(IsSaturated(value));
  value = SatMul(value, 3);
  EXPECT_TRUE(IsSaturated(value));
}

}  // namespace
}  // namespace pgm
