// End-to-end smoke test: the paper's own worked examples must hold.

#include <gtest/gtest.h>

#include "core/em.h"
#include "core/gap.h"
#include "core/miner.h"
#include "core/pattern.h"
#include "core/verifier.h"
#include "seq/sequence.h"

namespace pgm {
namespace {

// Section 3: S = AAGCC, P = AC, gap [2,3] -> sup(P) = 3.
TEST(SmokeTest, PaperSection3SupportExample) {
  Sequence s = *Sequence::FromString("AAGCC", Alphabet::Dna());
  Pattern p = *Pattern::Parse("AC", Alphabet::Dna());
  GapRequirement gap = *GapRequirement::Create(2, 3);
  StatusOr<SupportInfo> support = CountSupport(s, p, gap);
  ASSERT_TRUE(support.ok());
  EXPECT_EQ(support->count, 3u);
}

// Section 4.2: S = ACTTT, gap [1,3]: sup(AT) = 3 > sup(A) = 1 — the Apriori
// property genuinely fails under this model.
TEST(SmokeTest, AprioriPropertyFails) {
  Sequence s = *Sequence::FromString("ACTTT", Alphabet::Dna());
  GapRequirement gap = *GapRequirement::Create(1, 3);
  SupportInfo sup_at =
      *CountSupport(s, *Pattern::Parse("AT", Alphabet::Dna()), gap);
  SupportInfo sup_a =
      *CountSupport(s, *Pattern::Parse("A", Alphabet::Dna()), gap);
  EXPECT_EQ(sup_at.count, 3u);
  EXPECT_EQ(sup_a.count, 1u);
  EXPECT_GT(sup_at.count, sup_a.count);
}

// Table 2: S = ACGTCCGT, gap [1,2], m = 2 -> K = [2,1,2,1,0,0,0,0], e_m = 2.
TEST(SmokeTest, PaperTable2Em) {
  Sequence s = *Sequence::FromString("ACGTCCGT", Alphabet::Dna());
  GapRequirement gap = *GapRequirement::Create(1, 2);
  StatusOr<EmResult> em = ComputeEm(s, gap, 2);
  ASSERT_TRUE(em.ok());
  ASSERT_EQ(em->k_values.size(), 8u);
  EXPECT_EQ(em->k_values[0], 2u);
  EXPECT_EQ(em->k_values[1], 1u);
  EXPECT_EQ(em->k_values[2], 2u);
  EXPECT_EQ(em->k_values[3], 1u);
  EXPECT_EQ(em->k_values[4], 0u);
  EXPECT_EQ(em->k_values[5], 0u);
  EXPECT_EQ(em->k_values[6], 0u);
  EXPECT_EQ(em->k_values[7], 0u);
  EXPECT_EQ(em->em, 2u);
}

// Section 5.1: S = AACCGTT, P = ACT, gap [1,2] -> PIL = {(0,3),(1,2)}
// (paper's 1-based {(1,3),(2,2)}).
TEST(SmokeTest, PaperPilExample) {
  Sequence s = *Sequence::FromString("AACCGTT", Alphabet::Dna());
  Pattern p = *Pattern::Parse("ACT", Alphabet::Dna());
  GapRequirement gap = *GapRequirement::Create(1, 2);
  StatusOr<PartialIndexList> pil = ComputePil(s, p, gap);
  ASSERT_TRUE(pil.ok());
  ASSERT_EQ(pil->size(), 2u);
  EXPECT_EQ(pil->entries()[0].pos, 0u);
  EXPECT_EQ(pil->entries()[0].count, 3u);
  EXPECT_EQ(pil->entries()[1].pos, 1u);
  EXPECT_EQ(pil->entries()[1].count, 2u);
  EXPECT_EQ(pil->TotalSupport().count, 5u);
}

// The full miners run end to end on a small input.
TEST(SmokeTest, MinersRunEndToEnd) {
  Sequence s = *Sequence::FromString(
      "ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT", Alphabet::Dna());
  MinerConfig config;
  config.min_gap = 1;
  config.max_gap = 3;
  config.min_support_ratio = 0.01;
  config.start_length = 2;
  StatusOr<MiningResult> mpp = MineMpp(s, config);
  ASSERT_TRUE(mpp.ok());
  StatusOr<MiningResult> mppm = MineMppm(s, config);
  ASSERT_TRUE(mppm.ok());
  StatusOr<MiningResult> adaptive = MineAdaptive(s, config);
  ASSERT_TRUE(adaptive.ok());
  EXPECT_FALSE(mpp->patterns.empty());
  EXPECT_EQ(mpp->patterns.size(), mppm->patterns.size());
  EXPECT_EQ(mpp->patterns.size(), adaptive->patterns.size());
}

}  // namespace
}  // namespace pgm
