#include "core/pil.h"

#include <gtest/gtest.h>

#include "core/pattern.h"
#include "core/verifier.h"
#include "datagen/generators.h"
#include "util/random.h"

namespace pgm {
namespace {

TEST(PilTest, ForSymbolListsOccurrences) {
  Sequence s = *Sequence::FromString("ACAGA", Alphabet::Dna());
  PartialIndexList pil = PartialIndexList::ForSymbol(s, 0);  // 'A'
  ASSERT_EQ(pil.size(), 3u);
  EXPECT_EQ(pil.entries()[0], (PilEntry{0, 1}));
  EXPECT_EQ(pil.entries()[1], (PilEntry{2, 1}));
  EXPECT_EQ(pil.entries()[2], (PilEntry{4, 1}));
  EXPECT_EQ(pil.TotalSupport().count, 3u);
}

TEST(PilTest, ForSymbolAbsentSymbol) {
  Sequence s = *Sequence::FromString("AAAA", Alphabet::Dna());
  PartialIndexList pil = PartialIndexList::ForSymbol(s, 3);  // 'T'
  EXPECT_TRUE(pil.empty());
  EXPECT_EQ(pil.TotalSupport().count, 0u);
}

TEST(PilTest, PaperExampleCombine) {
  // S = AACCGTT, P = ACT, gap [1,2] -> PIL(P) = {(0,3),(1,2)} (0-based).
  Sequence s = *Sequence::FromString("AACCGTT", Alphabet::Dna());
  GapRequirement gap = *GapRequirement::Create(1, 2);
  // Build PIL(AC) and PIL(CT) via Combine from single-symbol PILs.
  PartialIndexList a = PartialIndexList::ForSymbol(s, 0);
  PartialIndexList c = PartialIndexList::ForSymbol(s, 1);
  PartialIndexList t = PartialIndexList::ForSymbol(s, 3);
  PartialIndexList ac = PartialIndexList::Combine(a, c, gap);
  PartialIndexList ct = PartialIndexList::Combine(c, t, gap);
  PartialIndexList act = PartialIndexList::Combine(ac, ct, gap);
  ASSERT_EQ(act.size(), 2u);
  EXPECT_EQ(act.entries()[0], (PilEntry{0, 3}));
  EXPECT_EQ(act.entries()[1], (PilEntry{1, 2}));
  EXPECT_EQ(act.TotalSupport().count, 5u);
}

TEST(PilTest, CombineEmptyInputs) {
  Sequence s = *Sequence::FromString("ACGT", Alphabet::Dna());
  GapRequirement gap = *GapRequirement::Create(0, 1);
  PartialIndexList a = PartialIndexList::ForSymbol(s, 0);
  PartialIndexList empty;
  EXPECT_TRUE(PartialIndexList::Combine(a, empty, gap).empty());
  EXPECT_TRUE(PartialIndexList::Combine(empty, a, gap).empty());
  EXPECT_TRUE(PartialIndexList::Combine(empty, empty, gap).empty());
}

TEST(PilTest, CombineRespectsWindowBoundaries) {
  // Prefix at 0; suffix at 3 and 7. Gap [2,3] allows suffix positions
  // 3..4 only -> only the entry at 3 is counted.
  PartialIndexList prefix = PartialIndexList::FromEntries({{0, 1}});
  PartialIndexList suffix = PartialIndexList::FromEntries({{3, 5}, {7, 9}});
  GapRequirement gap = *GapRequirement::Create(2, 3);
  PartialIndexList combined = PartialIndexList::Combine(prefix, suffix, gap);
  ASSERT_EQ(combined.size(), 1u);
  EXPECT_EQ(combined.entries()[0], (PilEntry{0, 5}));
}

TEST(PilTest, CombineDropsZeroWindows) {
  PartialIndexList prefix = PartialIndexList::FromEntries({{0, 1}, {50, 1}});
  PartialIndexList suffix = PartialIndexList::FromEntries({{3, 2}});
  GapRequirement gap = *GapRequirement::Create(2, 3);
  PartialIndexList combined = PartialIndexList::Combine(prefix, suffix, gap);
  // Position 50's window [53,54] has no suffix entries: dropped entirely.
  ASSERT_EQ(combined.size(), 1u);
  EXPECT_EQ(combined.entries()[0].pos, 0u);
}

TEST(PilTest, CombineSumsCountsInsideWindow) {
  PartialIndexList prefix = PartialIndexList::FromEntries({{0, 7}});
  PartialIndexList suffix =
      PartialIndexList::FromEntries({{1, 10}, {2, 20}, {3, 40}});
  GapRequirement gap = *GapRequirement::Create(0, 2);  // window [1,3]
  PartialIndexList combined = PartialIndexList::Combine(prefix, suffix, gap);
  ASSERT_EQ(combined.size(), 1u);
  // The prefix count is membership-only; the result is the suffix sum.
  EXPECT_EQ(combined.entries()[0].count, 70u);
}

TEST(PilTest, CombineSlidingWindowAgainstVerifier) {
  // Randomized cross-check: PIL built by repeated Combine equals the
  // direct-DP PIL from the verifier.
  Rng rng(99);
  GapRequirement gap = *GapRequirement::Create(1, 3);
  for (int trial = 0; trial < 20; ++trial) {
    Sequence s = *UniformRandomSequence(60, Alphabet::Dna(), rng);
    // Random pattern of length 3.
    std::vector<Symbol> symbols;
    for (int i = 0; i < 3; ++i) {
      symbols.push_back(static_cast<Symbol>(rng.UniformInt(4)));
    }
    Pattern p = *Pattern::FromSymbols(symbols, Alphabet::Dna());
    PartialIndexList s0 = PartialIndexList::ForSymbol(s, symbols[0]);
    PartialIndexList s1 = PartialIndexList::ForSymbol(s, symbols[1]);
    PartialIndexList s2 = PartialIndexList::ForSymbol(s, symbols[2]);
    PartialIndexList left = PartialIndexList::Combine(s0, s1, gap);
    PartialIndexList right = PartialIndexList::Combine(s1, s2, gap);
    PartialIndexList combined = PartialIndexList::Combine(left, right, gap);
    PartialIndexList direct = *ComputePil(s, p, gap);
    EXPECT_TRUE(combined == direct) << "trial " << trial << " pattern "
                                    << p.ToShorthand();
  }
}

TEST(PilTest, TotalSupportSaturates) {
  PartialIndexList pil = PartialIndexList::FromEntries(
      {{0, kSaturatedCount - 1}, {1, kSaturatedCount - 1}});
  SupportInfo info = pil.TotalSupport();
  EXPECT_TRUE(info.saturated);
  EXPECT_EQ(info.count, kSaturatedCount);
}

TEST(PilTest, TotalSupportWithSaturatedEntry) {
  PartialIndexList pil =
      PartialIndexList::FromEntries({{0, kSaturatedCount}, {5, 3}});
  SupportInfo info = pil.TotalSupport();
  EXPECT_TRUE(info.saturated);
  EXPECT_EQ(info.count, kSaturatedCount);
}

TEST(PilTest, CombinePropagatesSaturation) {
  PartialIndexList prefix = PartialIndexList::FromEntries({{0, 1}});
  PartialIndexList suffix =
      PartialIndexList::FromEntries({{2, kSaturatedCount}, {3, 5}});
  GapRequirement gap = *GapRequirement::Create(1, 2);  // window [2,3]
  PartialIndexList combined = PartialIndexList::Combine(prefix, suffix, gap);
  ASSERT_EQ(combined.size(), 1u);
  EXPECT_TRUE(IsSaturated(combined.entries()[0].count));
  // Window slides past the saturated entry: the sum must recover exactly.
  PartialIndexList prefix2 = PartialIndexList::FromEntries({{0, 1}, {1, 1}});
  PartialIndexList combined2 = PartialIndexList::Combine(prefix2, suffix, gap);
  ASSERT_EQ(combined2.size(), 2u);
  EXPECT_TRUE(IsSaturated(combined2.entries()[0].count));  // window [2,3]
  EXPECT_EQ(combined2.entries()[1].count, 5u);             // window [3,4]
}

TEST(PilTest, MemoryBytesTracksCapacity) {
  PartialIndexList pil = PartialIndexList::FromEntries({{0, 1}, {1, 1}});
  EXPECT_GE(pil.MemoryBytes(), 2 * sizeof(PilEntry));
}

}  // namespace
}  // namespace pgm
