// The retry substrate: the backoff schedule must be a pure function of
// (policy, attempt) — goldens below pin it — and ReadFileToStringWithRetry
// must recover from transient faults while still surfacing permanent ones.

#include "util/backoff.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "util/fault_injection.h"
#include "util/io.h"

namespace pgm {
namespace {

TEST(BackoffTest, FirstAttemptHasNoDelay) {
  RetryPolicy policy;
  policy.base_delay_ms = 100;
  EXPECT_EQ(BackoffDelayMs(policy, 0), 0);
  EXPECT_EQ(BackoffDelayMs(policy, 1), 0);
}

TEST(BackoffTest, ExponentialScheduleGolden) {
  RetryPolicy policy;
  policy.base_delay_ms = 10;
  policy.multiplier = 2.0;
  policy.max_delay_ms = 1000;
  EXPECT_EQ(BackoffDelayMs(policy, 2), 10);
  EXPECT_EQ(BackoffDelayMs(policy, 3), 20);
  EXPECT_EQ(BackoffDelayMs(policy, 4), 40);
  EXPECT_EQ(BackoffDelayMs(policy, 5), 80);
}

TEST(BackoffTest, DelayClampsAtCeiling) {
  RetryPolicy policy;
  policy.base_delay_ms = 10;
  policy.multiplier = 10.0;
  policy.max_delay_ms = 250;
  EXPECT_EQ(BackoffDelayMs(policy, 2), 10);
  EXPECT_EQ(BackoffDelayMs(policy, 3), 100);
  EXPECT_EQ(BackoffDelayMs(policy, 4), 250);
  EXPECT_EQ(BackoffDelayMs(policy, 9), 250);  // stays clamped forever
}

TEST(BackoffTest, JitterIsDeterministicAndBounded) {
  RetryPolicy policy;
  policy.base_delay_ms = 100;
  policy.multiplier = 2.0;
  policy.max_delay_ms = 10000;
  policy.jitter_seed = 42;
  for (int attempt = 2; attempt <= 6; ++attempt) {
    const std::int64_t first = BackoffDelayMs(policy, attempt);
    const std::int64_t second = BackoffDelayMs(policy, attempt);
    EXPECT_EQ(first, second) << "jitter must be a pure function of the seed";
    RetryPolicy no_jitter = policy;
    no_jitter.jitter_seed = 0;
    const std::int64_t full = BackoffDelayMs(no_jitter, attempt);
    EXPECT_GE(first, full / 2);
    EXPECT_LE(first, full);
  }
}

TEST(BackoffTest, DifferentSeedsGiveDifferentSchedules) {
  RetryPolicy a;
  a.base_delay_ms = 1000;
  a.max_delay_ms = 100000;
  a.jitter_seed = 1;
  RetryPolicy b = a;
  b.jitter_seed = 2;
  // With a 500ms jitter window, five identical draws in a row would mean
  // the seed is being ignored.
  bool any_differ = false;
  for (int attempt = 2; attempt <= 6; ++attempt) {
    if (BackoffDelayMs(a, attempt) != BackoffDelayMs(b, attempt)) {
      any_differ = true;
    }
  }
  EXPECT_TRUE(any_differ);
}

TEST(BackoffTest, RecorderCapturesInsteadOfSleeping) {
  ScopedBackoffRecorder recorder;
  BackoffSleep(500);
  BackoffSleep(1000);
  ASSERT_EQ(recorder.delays().size(), 2u);
  EXPECT_EQ(recorder.delays()[0], 500);
  EXPECT_EQ(recorder.delays()[1], 1000);
}

// --- ReadFileToStringWithRetry against injected faults ---

std::string WriteTempFile(const std::string& name,
                          const std::string& contents) {
  const std::string path = testing::TempDir() + "/" + name;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  EXPECT_NE(f, nullptr);
  std::fwrite(contents.data(), 1, contents.size(), f);
  std::fclose(f);
  return path;
}

RetryPolicy ThreeAttempts() {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_delay_ms = 10;
  return policy;
}

TEST(BackoffTest, RetryRecoversFromTransientOpenError) {
  const std::string path = WriteTempFile("retry_transient.txt", "payload");
  FileFault fault;
  fault.kind = FileFault::Kind::kOpenError;
  fault.max_hits = 2;  // attempts 1 and 2 fail; attempt 3 succeeds
  ScopedFileFault scope(fault);
  ScopedBackoffRecorder recorder;
  StatusOr<std::string> contents =
      ReadFileToStringWithRetry(path, ThreeAttempts());
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "payload");
  EXPECT_EQ(scope.hits(), 2);
  // The deterministic schedule: 10ms before attempt 2, 20ms before 3.
  ASSERT_EQ(recorder.delays().size(), 2u);
  EXPECT_EQ(recorder.delays()[0], 10);
  EXPECT_EQ(recorder.delays()[1], 20);
  std::remove(path.c_str());
}

TEST(BackoffTest, RetryExhaustsOnPermanentFault) {
  const std::string path = WriteTempFile("retry_permanent.txt", "payload");
  FileFault fault;
  fault.kind = FileFault::Kind::kOpenError;  // max_hits 0 = permanent
  ScopedFileFault scope(fault);
  ScopedBackoffRecorder recorder;
  StatusOr<std::string> contents =
      ReadFileToStringWithRetry(path, ThreeAttempts());
  ASSERT_FALSE(contents.ok());
  EXPECT_EQ(contents.status().code(), StatusCode::kIoError);
  EXPECT_EQ(scope.hits(), 3);
  EXPECT_EQ(recorder.delays().size(), 2u);  // no sleep after the last attempt
  std::remove(path.c_str());
}

TEST(BackoffTest, RetryDoesNotMaskCorruption) {
  // kTruncate delivers short content with no I/O error; the retry wrapper
  // must pass it straight through for the *parser* to reject — retrying
  // cannot fix corrupt bytes and must not hide them.
  const std::string path = WriteTempFile("retry_corrupt.txt", "full-content");
  FileFault fault;
  fault.kind = FileFault::Kind::kTruncate;
  fault.byte_limit = 4;
  ScopedFileFault scope(fault);
  ScopedBackoffRecorder recorder;
  StatusOr<std::string> contents =
      ReadFileToStringWithRetry(path, ThreeAttempts());
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "full");
  EXPECT_EQ(scope.hits(), 1);  // no retry: the read "succeeded"
  EXPECT_TRUE(recorder.delays().empty());
  std::remove(path.c_str());
}

TEST(BackoffTest, SingleAttemptPolicyNeverRetries) {
  const std::string path = WriteTempFile("retry_single.txt", "payload");
  FileFault fault;
  fault.kind = FileFault::Kind::kOpenError;
  ScopedFileFault scope(fault);
  RetryPolicy policy;  // max_attempts = 1
  StatusOr<std::string> contents = ReadFileToStringWithRetry(path, policy);
  ASSERT_FALSE(contents.ok());
  EXPECT_EQ(scope.hits(), 1);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pgm
