#include "analysis/window_model.h"

#include <gtest/gtest.h>

#include "core/verifier.h"
#include "datagen/generators.h"
#include "util/random.h"

namespace pgm {
namespace {

Sequence Seq(const char* text) {
  return *Sequence::FromString(text, Alphabet::Dna());
}

Pattern Dna(const char* shorthand) {
  return *Pattern::Parse(shorthand, Alphabet::Dna());
}

WindowModelConfig Config(std::size_t width, bool overlapping = true,
                         double fraction = 0.5) {
  WindowModelConfig config;
  config.window_width = width;
  config.overlapping = overlapping;
  config.min_window_fraction = fraction;
  return config;
}

Pattern RandomPatternHelper(Rng& rng) {
  const std::size_t length = 2 + rng.UniformInt(2);
  std::vector<Symbol> symbols;
  for (std::size_t i = 0; i < length; ++i) {
    symbols.push_back(static_cast<Symbol>(rng.UniformInt(4)));
  }
  return *Pattern::FromSymbols(std::move(symbols), Alphabet::Dna());
}

TEST(NumWindowsTest, OverlappingAndTiling) {
  EXPECT_EQ(NumWindows(10, Config(4, true)), 7);
  EXPECT_EQ(NumWindows(10, Config(4, false)), 2);
  EXPECT_EQ(NumWindows(10, Config(10, true)), 1);
  EXPECT_EQ(NumWindows(10, Config(11, true)), 0);
  EXPECT_EQ(NumWindows(0, Config(4, true)), 0);
}

TEST(WindowModelTest, CountsByHandOverlapping) {
  // S = ACGTA, P = AT with gap [2,2]: the only match is [0, 3].
  // Width-4 windows: [0,3] contains it; [1,4] does not.
  Sequence s = Seq("ACGTA");
  Pattern p = Dna("AT");
  GapRequirement gap = *GapRequirement::Create(2, 2);
  EXPECT_EQ(*CountWindowsWithOccurrence(s, p, gap, Config(4)), 1);
  EXPECT_EQ(*CountWindowsWithOccurrence(s, p, gap, Config(5)), 1);
  // A width-3 window can never hold a span-4 match.
  EXPECT_EQ(*CountWindowsWithOccurrence(s, p, gap, Config(3)), 0);
}

TEST(WindowModelTest, CountsByHandTiling) {
  // S = AATAAT: P = AT, gap [0,0]: matches [1,2] and [4,5].
  // Width-3 tiles [0,3) and [3,6) each contain one.
  Sequence s = Seq("AATAAT");
  Pattern p = Dna("AT");
  GapRequirement gap = *GapRequirement::Create(0, 0);
  EXPECT_EQ(*CountWindowsWithOccurrence(s, p, gap, Config(3, false)), 2);
  // Width-2 tiles: [0,2)=AA no, [2,4)=TA no, [4,6)=AT yes.
  EXPECT_EQ(*CountWindowsWithOccurrence(s, p, gap, Config(2, false)), 1);
}

TEST(WindowModelTest, BoundarySpanningMatchInvisible) {
  // The paper's criticism of the window model: a match crossing a window
  // boundary is not counted anywhere. S = AAT|TAA tiles of width 3 with
  // P = TT, gap [0,0]: the only match [2,3] spans the boundary.
  Sequence s = Seq("AATTAA");
  Pattern p = Dna("TT");
  GapRequirement gap = *GapRequirement::Create(0, 0);
  EXPECT_EQ(CountSupport(s, p, gap)->count, 1u);  // it IS there
  EXPECT_EQ(*CountWindowsWithOccurrence(s, p, gap, Config(3, false)), 0);
  // Overlapping windows do see it.
  EXPECT_EQ(*CountWindowsWithOccurrence(s, p, gap, Config(3, true)), 2);
}

TEST(WindowModelTest, FrequencyThreshold) {
  Sequence s = Seq("ATATATATAT");
  Pattern p = Dna("AT");
  GapRequirement gap = *GapRequirement::Create(0, 0);
  // Every width-2 overlapping window starting at an even index matches:
  // 5 of 9 windows.
  WindowModelConfig config = Config(2, true, 0.5);
  EXPECT_EQ(*CountWindowsWithOccurrence(s, p, gap, config), 5);
  EXPECT_TRUE(*IsWindowFrequent(s, p, gap, config));
  config.min_window_fraction = 0.6;
  EXPECT_FALSE(*IsWindowFrequent(s, p, gap, config));
}

TEST(WindowModelTest, OverlappingMatchesBruteForce) {
  // Randomized cross-check of the sliding-minimum implementation against a
  // direct per-window scan of EnumerateMatches.
  Rng rng(31337);
  GapRequirement gap = *GapRequirement::Create(1, 2);
  for (int trial = 0; trial < 10; ++trial) {
    Sequence s = *UniformRandomSequence(40, Alphabet::Dna(), rng);
    Pattern p = RandomPatternHelper(rng);
    const std::size_t width = 6 + rng.UniformInt(6);
    std::int64_t expected = 0;
    auto matches = EnumerateMatches(s, p, gap);
    for (std::size_t b = 0; b + width <= s.size(); ++b) {
      for (const auto& offsets : matches) {
        if (offsets.front() >= static_cast<std::int64_t>(b) &&
            offsets.back() < static_cast<std::int64_t>(b + width)) {
          ++expected;
          break;
        }
      }
    }
    EXPECT_EQ(*CountWindowsWithOccurrence(s, p, gap, Config(width)), expected)
        << "trial " << trial << " pattern " << p.ToShorthand() << " width "
        << width;
  }
}

TEST(WindowModelTest, Validation) {
  Sequence s = Seq("ACGT");
  Pattern p = Dna("AC");
  GapRequirement gap = *GapRequirement::Create(0, 1);
  EXPECT_FALSE(CountWindowsWithOccurrence(s, p, gap, Config(0)).ok());
  WindowModelConfig bad_fraction = Config(3);
  bad_fraction.min_window_fraction = 0.0;
  EXPECT_FALSE(CountWindowsWithOccurrence(s, p, gap, bad_fraction).ok());
  bad_fraction.min_window_fraction = 1.5;
  EXPECT_FALSE(CountWindowsWithOccurrence(s, p, gap, bad_fraction).ok());
  Pattern protein = *Pattern::Parse("LW", Alphabet::Protein());
  EXPECT_FALSE(CountWindowsWithOccurrence(s, protein, gap, Config(3)).ok());
}

TEST(WindowModelTest, WindowWiderThanSequence) {
  Sequence s = Seq("ACGT");
  Pattern p = Dna("AC");
  GapRequirement gap = *GapRequirement::Create(0, 1);
  EXPECT_EQ(*CountWindowsWithOccurrence(s, p, gap, Config(10)), 0);
  EXPECT_FALSE(*IsWindowFrequent(s, p, gap, Config(10)));
}

}  // namespace
}  // namespace pgm
