#include "util/table_printer.h"

#include <gtest/gtest.h>

namespace pgm {
namespace {

TEST(TablePrinterTest, RendersAlignedBox) {
  TablePrinter table({"name", "n"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer", "22"});
  const std::string expected =
      "+--------+----+\n"
      "| name   | n  |\n"
      "+--------+----+\n"
      "| a      | 1  |\n"
      "| longer | 22 |\n"
      "+--------+----+\n";
  EXPECT_EQ(table.ToString(), expected);
}

TEST(TablePrinterTest, PadsShortRows) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"1"});
  std::string rendered = table.ToString();
  // Row renders with empty cells for b and c.
  EXPECT_NE(rendered.find("| 1 |   |   |"), std::string::npos);
}

TEST(TablePrinterTest, TruncatesLongRows) {
  TablePrinter table({"only"});
  table.AddRow({"x", "dropped"});
  std::string rendered = table.ToString();
  EXPECT_EQ(rendered.find("dropped"), std::string::npos);
}

TEST(TablePrinterTest, RowBuilderFormatsNumbers) {
  TablePrinter table({"s", "d", "i", "u"});
  table.Row()
      .Add("x")
      .Add(0.5)
      .Add(static_cast<std::int64_t>(-2))
      .Add(static_cast<std::uint64_t>(7))
      .Done();
  std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("0.5"), std::string::npos);
  EXPECT_NE(rendered.find("-2"), std::string::npos);
  EXPECT_NE(rendered.find("7"), std::string::npos);
}

TEST(TablePrinterTest, EmptyTableIsJustHeader) {
  TablePrinter table({"h"});
  const std::string expected =
      "+---+\n"
      "| h |\n"
      "+---+\n"
      "+---+\n";
  EXPECT_EQ(table.ToString(), expected);
}

}  // namespace
}  // namespace pgm
