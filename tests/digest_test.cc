// Digest and cache-key canonicalization. The hex goldens here are the
// contract: a change that silently re-keys the result cache shows up as a
// failing golden, not as a fleet of cold caches in production.

#include "util/digest.h"

#include <gtest/gtest.h>

#include "serve/canonical.h"
#include "seq/alphabet.h"
#include "seq/sequence.h"

namespace pgm {
namespace {

// --- FNV-1a 64 reference vectors ---

TEST(DigestTest, Fnv1a64ReferenceVectors) {
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(DigestTest, StreamingMatchesOneShot) {
  Digest64 digest;
  digest.Update("foo").Update("bar");
  EXPECT_EQ(digest.value(), Fnv1a64("foobar"));
}

TEST(DigestTest, HexIsFixedWidthLowercase) {
  EXPECT_EQ(DigestToHex(0), "0000000000000000");
  EXPECT_EQ(DigestToHex(0xcbf29ce484222325ull), "cbf29ce484222325");
}

TEST(DigestTest, UpdateU64IsLittleEndian) {
  Digest64 digest;
  digest.UpdateU64(0x0102030405060708ull);
  const unsigned char bytes[] = {8, 7, 6, 5, 4, 3, 2, 1};
  Digest64 expected;
  expected.Update(bytes, sizeof(bytes));
  EXPECT_EQ(digest.value(), expected.value());
}

// --- Canonical config string ---

Sequence Acgt() {
  StatusOr<Sequence> sequence = Sequence::FromString("ACGT", Alphabet::Dna());
  EXPECT_TRUE(sequence.ok());
  return *sequence;
}

TEST(CanonicalTest, DefaultConfigStringGolden) {
  // This literal IS the cache-key schema for a default config. Changing it
  // invalidates every persisted key — do that deliberately, not by accident.
  EXPECT_EQ(
      CanonicalConfigString("mpp", MinerConfig{}),
      "algorithm=mpp;em_order=10;initial_n=10;max_gap=0;max_iterations=16;"
      "max_length=-1;min_gap=0;min_support_ratio=0x0p+0;start_length=3;"
      "use_em_bound=1;user_n=-1;");
}

TEST(CanonicalTest, DigestGoldens) {
  EXPECT_EQ(Fnv1a64(CanonicalConfigString("mpp", MinerConfig{})),
            0x6756c649f370712dull);
  EXPECT_EQ(SequenceDigest(Acgt()), 0x5c6d81563d4325afull);
  EXPECT_EQ(CacheKey(Acgt(), "mpp", MinerConfig{}),
            "5c6d81563d4325af:6756c649f370712d");
}

TEST(CanonicalTest, VolatileFieldsDoNotChangeTheKey) {
  const std::string base = CacheKey(Acgt(), "mpp", MinerConfig{});

  MinerConfig config;
  config.threads = 8;
  config.limits.deadline_ms = 1234;
  config.limits.pil_memory_budget_bytes = 1 << 20;
  config.limits.max_level_candidates = 99;
  config.limits.max_total_candidates = 999;
  CancelToken cancel;
  config.cancel = &cancel;
  MiningObserver observer;
  config.observer = &observer;
  // A completed run under any of these knobs is byte-identical to the
  // ungoverned serial run (the guard only observes; the parallel merge is
  // candidate-ordered), so they must share the cache entry.
  EXPECT_EQ(CacheKey(Acgt(), "mpp", config), base);
}

TEST(CanonicalTest, SemanticFieldsChangeTheKey) {
  const std::string base = CacheKey(Acgt(), "mpp", MinerConfig{});

  MinerConfig gap;
  gap.max_gap = 5;
  EXPECT_NE(CacheKey(Acgt(), "mpp", gap), base);

  MinerConfig ratio;
  ratio.min_support_ratio = 0.25;
  EXPECT_NE(CacheKey(Acgt(), "mpp", ratio), base);

  EXPECT_NE(CacheKey(Acgt(), "mppm", MinerConfig{}), base);
}

TEST(CanonicalTest, SequenceChangesTheKey) {
  StatusOr<Sequence> other = Sequence::FromString("ACGG", Alphabet::Dna());
  ASSERT_TRUE(other.ok());
  EXPECT_NE(CacheKey(*other, "mpp", MinerConfig{}),
            CacheKey(Acgt(), "mpp", MinerConfig{}));
}

TEST(CanonicalTest, AlphabetIsPartOfTheSequenceDigest) {
  // The same residue characters over different alphabets encode to
  // different symbol streams semantically; the digest must not conflate
  // them even when the raw bytes happen to match.
  StatusOr<Sequence> protein =
      Sequence::FromString("ACGT", Alphabet::Protein());
  ASSERT_TRUE(protein.ok());
  EXPECT_NE(SequenceDigest(*protein), SequenceDigest(Acgt()));
}

}  // namespace
}  // namespace pgm
