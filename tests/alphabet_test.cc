#include "seq/alphabet.h"

#include <gtest/gtest.h>

namespace pgm {
namespace {

TEST(AlphabetTest, DnaHasFourSymbolsInOrder) {
  const Alphabet& dna = Alphabet::Dna();
  EXPECT_EQ(dna.size(), 4u);
  EXPECT_EQ(dna.symbols(), "ACGT");
  EXPECT_EQ(dna.CharAt(0), 'A');
  EXPECT_EQ(dna.CharAt(3), 'T');
}

TEST(AlphabetTest, ProteinHasTwentySymbols) {
  const Alphabet& protein = Alphabet::Protein();
  EXPECT_EQ(protein.size(), 20u);
  EXPECT_TRUE(protein.Contains('W'));
  EXPECT_FALSE(protein.Contains('B'));  // not a standard amino acid
  EXPECT_FALSE(protein.Contains('Z'));
}

TEST(AlphabetTest, EncodeDecodeRoundTrip) {
  const Alphabet& dna = Alphabet::Dna();
  for (char c : std::string("ACGT")) {
    Symbol s = dna.Encode(c);
    ASSERT_NE(s, kInvalidSymbol);
    EXPECT_EQ(dna.CharAt(s), c);
  }
}

TEST(AlphabetTest, CaseInsensitiveByDefault) {
  const Alphabet& dna = Alphabet::Dna();
  EXPECT_EQ(dna.Encode('a'), dna.Encode('A'));
  EXPECT_EQ(dna.Encode('t'), dna.Encode('T'));
  EXPECT_TRUE(dna.Contains('g'));
}

TEST(AlphabetTest, CaseSensitiveWhenRequested) {
  StatusOr<Alphabet> result = Alphabet::Create("AC", /*case_insensitive=*/false);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->Contains('A'));
  EXPECT_FALSE(result->Contains('a'));
}

TEST(AlphabetTest, CaseSensitiveAllowsBothCasesAsDistinctSymbols) {
  StatusOr<Alphabet> result = Alphabet::Create("Aa", /*case_insensitive=*/false);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->Encode('A'), result->Encode('a'));
}

TEST(AlphabetTest, InvalidCharactersEncodeToSentinel) {
  const Alphabet& dna = Alphabet::Dna();
  EXPECT_EQ(dna.Encode('N'), kInvalidSymbol);
  EXPECT_EQ(dna.Encode(' '), kInvalidSymbol);
  EXPECT_EQ(dna.Encode('\0'), kInvalidSymbol);
}

TEST(AlphabetTest, RejectsEmpty) {
  EXPECT_FALSE(Alphabet::Create("").ok());
}

TEST(AlphabetTest, RejectsDuplicates) {
  EXPECT_FALSE(Alphabet::Create("AA").ok());
  // Case-insensitive: 'a' collides with 'A'.
  EXPECT_FALSE(Alphabet::Create("Aa").ok());
}

TEST(AlphabetTest, RejectsWildcardDot) {
  EXPECT_FALSE(Alphabet::Create("AC.").ok());
}

TEST(AlphabetTest, RejectsWhitespaceAndNonPrintable) {
  EXPECT_FALSE(Alphabet::Create("A C").ok());
  EXPECT_FALSE(Alphabet::Create(std::string_view("A\tC", 3)).ok());
  EXPECT_FALSE(Alphabet::Create(std::string_view("A\x01", 2)).ok());
}

TEST(AlphabetTest, CustomBinaryAlphabet) {
  StatusOr<Alphabet> result = Alphabet::Create("01");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);
  EXPECT_EQ(result->Encode('0'), 0);
  EXPECT_EQ(result->Encode('1'), 1);
}

TEST(AlphabetTest, EqualityComparesSymbolsAndCaseMode) {
  Alphabet a = *Alphabet::Create("AC");
  Alphabet b = *Alphabet::Create("AC");
  Alphabet c = *Alphabet::Create("AG");
  Alphabet d = *Alphabet::Create("AC", /*case_insensitive=*/false);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
}

}  // namespace
}  // namespace pgm
