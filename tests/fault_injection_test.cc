// Exercises the deterministic fault-injection hook at the file-ingestion
// choke point (util/io.h ReadFileToString) and verifies that every
// IoError/Corruption branch of the FASTA and CSV readers actually fires
// under injected open errors, read errors, and silent short reads.

#include "util/fault_injection.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "seq/fasta.h"
#include "util/backoff.h"
#include "util/csv_reader.h"
#include "util/io.h"

namespace pgm {
namespace {

// Writes `contents` to a file under the test temp dir and returns the path.
std::string WriteTempFile(const std::string& name,
                          const std::string& contents) {
  const std::string path = testing::TempDir() + "/" + name;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  EXPECT_NE(f, nullptr);
  std::fwrite(contents.data(), 1, contents.size(), f);
  std::fclose(f);
  return path;
}

constexpr char kFasta[] = ">a first\nACGTACGT\n>b\nGGGGCCCC\n";
constexpr char kCsv[] = "pattern,support\n\"ab,c\",5\nxyz,7\n";

// --- ReadFileToString itself ---

TEST(FaultInjectionTest, NoFaultIsPassthrough) {
  const std::string path = WriteTempFile("fault_plain.txt", "hello\n");
  StatusOr<std::string> contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "hello\n");
  std::remove(path.c_str());
}

TEST(FaultInjectionTest, OpenErrorFires) {
  const std::string path = WriteTempFile("fault_open.txt", "hello\n");
  FileFault fault;
  fault.kind = FileFault::Kind::kOpenError;
  ScopedFileFault scope(fault);
  StatusOr<std::string> contents = ReadFileToString(path);
  ASSERT_FALSE(contents.ok());
  EXPECT_EQ(contents.status().code(), StatusCode::kIoError);
  EXPECT_NE(contents.status().message().find("injected"), std::string::npos);
  EXPECT_EQ(scope.hits(), 1);
  std::remove(path.c_str());
}

TEST(FaultInjectionTest, ReadErrorDeliversPrefixThenFails) {
  const std::string path = WriteTempFile("fault_read.txt", "hello\n");
  FileFault fault;
  fault.kind = FileFault::Kind::kReadError;
  fault.byte_limit = 3;
  ScopedFileFault scope(fault);
  StatusOr<std::string> contents = ReadFileToString(path);
  ASSERT_FALSE(contents.ok());
  EXPECT_EQ(contents.status().code(), StatusCode::kIoError);
  EXPECT_EQ(scope.hits(), 1);
  std::remove(path.c_str());
}

TEST(FaultInjectionTest, TruncateIsSilent) {
  const std::string path = WriteTempFile("fault_trunc.txt", "hello\n");
  FileFault fault;
  fault.kind = FileFault::Kind::kTruncate;
  fault.byte_limit = 3;
  ScopedFileFault scope(fault);
  StatusOr<std::string> contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "hel");
  EXPECT_EQ(scope.hits(), 1);
  std::remove(path.c_str());
}

TEST(FaultInjectionTest, NonMatchingPathSubstringDoesNotFire) {
  const std::string path = WriteTempFile("fault_nomatch.txt", "hello\n");
  FileFault fault;
  fault.kind = FileFault::Kind::kOpenError;
  fault.path_substring = "some-other-file";
  ScopedFileFault scope(fault);
  StatusOr<std::string> contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "hello\n");
  EXPECT_EQ(scope.hits(), 0);
  std::remove(path.c_str());
}

TEST(FaultInjectionTest, MatchingPathSubstringFires) {
  const std::string path = WriteTempFile("fault_match.txt", "hello\n");
  FileFault fault;
  fault.kind = FileFault::Kind::kOpenError;
  fault.path_substring = "fault_match";
  ScopedFileFault scope(fault);
  EXPECT_FALSE(ReadFileToString(path).ok());
  EXPECT_EQ(scope.hits(), 1);
  std::remove(path.c_str());
}

TEST(FaultInjectionTest, FaultDisarmsWhenScopeEnds) {
  const std::string path = WriteTempFile("fault_scope.txt", "hello\n");
  {
    FileFault fault;
    fault.kind = FileFault::Kind::kOpenError;
    ScopedFileFault scope(fault);
    EXPECT_FALSE(ReadFileToString(path).ok());
  }
  EXPECT_TRUE(ReadFileToString(path).ok());
  std::remove(path.c_str());
}

// --- FASTA reader under faults ---
//
// The readers route through ReadFileToStringWithRetry (one retry for
// transient I/O faults), so a *permanent* injected fault is hit twice —
// once per attempt — before surfacing. ScopedBackoffRecorder keeps the
// retry's backoff from actually sleeping.

TEST(FaultInjectionTest, FastaOpenErrorSurfacesAsIoError) {
  const std::string path = WriteTempFile("fault_fasta_open.fa", kFasta);
  FileFault fault;
  fault.kind = FileFault::Kind::kOpenError;
  fault.path_substring = "fault_fasta_open";
  ScopedFileFault scope(fault);
  ScopedBackoffRecorder backoff;
  StatusOr<std::vector<FastaRecord>> records = ReadFastaFile(path);
  ASSERT_FALSE(records.ok());
  EXPECT_EQ(records.status().code(), StatusCode::kIoError);
  EXPECT_EQ(scope.hits(), 2);
  EXPECT_EQ(backoff.delays().size(), 1u);
  std::remove(path.c_str());
}

TEST(FaultInjectionTest, FastaOpenErrorRecoversWhenTransient) {
  // max_hits = 1: the first attempt fails, the retry succeeds — the caller
  // never sees the fault.
  const std::string path = WriteTempFile("fault_fasta_transient.fa", kFasta);
  FileFault fault;
  fault.kind = FileFault::Kind::kOpenError;
  fault.max_hits = 1;
  ScopedFileFault scope(fault);
  ScopedBackoffRecorder backoff;
  StatusOr<std::vector<FastaRecord>> records = ReadFastaFile(path);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 2u);
  EXPECT_EQ(scope.hits(), 1);
  std::remove(path.c_str());
}

TEST(FaultInjectionTest, FastaReadErrorSurfacesAsIoError) {
  const std::string path = WriteTempFile("fault_fasta_read.fa", kFasta);
  FileFault fault;
  fault.kind = FileFault::Kind::kReadError;
  fault.byte_limit = 10;
  ScopedFileFault scope(fault);
  ScopedBackoffRecorder backoff;
  StatusOr<std::vector<FastaRecord>> records = ReadFastaFile(path);
  ASSERT_FALSE(records.ok());
  EXPECT_EQ(records.status().code(), StatusCode::kIoError);
  EXPECT_EQ(scope.hits(), 2);
  std::remove(path.c_str());
}

TEST(FaultInjectionTest, FastaTruncationAfterHeaderIsCorruption) {
  // A short read that cuts the file right after ">b\n" leaves a headerless
  // record; the parser must report Corruption, not silently return it.
  const std::string path = WriteTempFile("fault_fasta_trunc.fa", kFasta);
  const std::string text(kFasta);
  FileFault fault;
  fault.kind = FileFault::Kind::kTruncate;
  fault.byte_limit = text.find(">b\n") + 3;
  ScopedFileFault scope(fault);
  StatusOr<std::vector<FastaRecord>> records = ReadFastaFile(path);
  ASSERT_FALSE(records.ok());
  EXPECT_EQ(records.status().code(), StatusCode::kCorruption);
  EXPECT_NE(records.status().message().find("has no residues"),
            std::string::npos);
  EXPECT_EQ(scope.hits(), 1);
  std::remove(path.c_str());
}

TEST(FaultInjectionTest, FastaTruncationMidRecordStillParses) {
  // Cutting inside record b's residues leaves a shorter but well-formed
  // record — the parser cannot distinguish that from a genuine short
  // sequence, which is exactly why the headerless case above must be loud.
  const std::string path = WriteTempFile("fault_fasta_mid.fa", kFasta);
  const std::string text(kFasta);
  FileFault fault;
  fault.kind = FileFault::Kind::kTruncate;
  fault.byte_limit = text.find("GGGGCCCC") + 4;
  ScopedFileFault scope(fault);
  StatusOr<std::vector<FastaRecord>> records = ReadFastaFile(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[1].residues, "GGGG");
  EXPECT_EQ(scope.hits(), 1);
  std::remove(path.c_str());
}

// --- CSV reader under faults ---

TEST(FaultInjectionTest, CsvOpenErrorSurfacesAsIoError) {
  const std::string path = WriteTempFile("fault_csv_open.csv", kCsv);
  FileFault fault;
  fault.kind = FileFault::Kind::kOpenError;
  ScopedFileFault scope(fault);
  ScopedBackoffRecorder backoff;
  auto rows = ReadCsvFile(path);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kIoError);
  EXPECT_EQ(scope.hits(), 2);  // permanent fault: both attempts intercepted
  std::remove(path.c_str());
}

TEST(FaultInjectionTest, CsvReadErrorSurfacesAsIoError) {
  const std::string path = WriteTempFile("fault_csv_read.csv", kCsv);
  FileFault fault;
  fault.kind = FileFault::Kind::kReadError;
  fault.byte_limit = 20;
  ScopedFileFault scope(fault);
  ScopedBackoffRecorder backoff;
  auto rows = ReadCsvFile(path);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kIoError);
  EXPECT_EQ(scope.hits(), 2);
  std::remove(path.c_str());
}

TEST(FaultInjectionTest, CsvTruncationMidQuotedFieldIsCorruption) {
  // Cut inside the quoted "ab,c" field: the reader must report the
  // unterminated quote rather than fabricate a record.
  const std::string path = WriteTempFile("fault_csv_trunc.csv", kCsv);
  const std::string text(kCsv);
  FileFault fault;
  fault.kind = FileFault::Kind::kTruncate;
  fault.byte_limit = text.find("\"ab") + 3;
  ScopedFileFault scope(fault);
  auto rows = ReadCsvFile(path);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kCorruption);
  EXPECT_NE(rows.status().message().find("unterminated quoted field"),
            std::string::npos);
  EXPECT_EQ(scope.hits(), 1);
  std::remove(path.c_str());
}

TEST(FaultInjectionTest, CsvTruncationAtRowBoundaryParsesShort) {
  const std::string path = WriteTempFile("fault_csv_row.csv", kCsv);
  const std::string text(kCsv);
  FileFault fault;
  fault.kind = FileFault::Kind::kTruncate;
  fault.byte_limit = text.find("xyz");  // ends exactly after row 2's newline
  ScopedFileFault scope(fault);
  auto rows = ReadCsvFile(path);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[1][0], "ab,c");
  EXPECT_EQ(scope.hits(), 1);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pgm
