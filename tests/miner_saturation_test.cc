// Degenerate-input saturation: a homopolymer with a wide gap window makes
// the number of matching offset sequences overflow 64 bits within a dozen
// levels. All four miners must clamp the count (FrequentPattern::saturated),
// keep support_ratio finite, and still terminate normally.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/miner.h"
#include "seq/sequence.h"
#include "util/saturating.h"

namespace pgm {
namespace {

Sequence Homopolymer(std::size_t length) {
  return *Sequence::FromString(std::string(length, 'A'), Alphabet::Dna());
}

MinerConfig SaturatingConfig() {
  MinerConfig config;
  // W = 81: support of A^l grows like L * 81^(l-1) and passes 2^64 around
  // l = 10, well inside the level budget below.
  config.min_gap = 0;
  config.max_gap = 80;
  config.min_support_ratio = 1e-12;
  config.start_length = 1;
  config.max_length = 12;
  return config;
}

void ExpectSaturatesCleanly(const MiningResult& result, const char* miner) {
  EXPECT_TRUE(result.complete()) << miner;
  ASSERT_FALSE(result.patterns.empty()) << miner;
  bool any_saturated = false;
  for (const FrequentPattern& fp : result.patterns) {
    // Only A^l can match a homopolymer.
    for (char c : fp.pattern.ToShorthand()) EXPECT_EQ(c, 'A') << miner;
    EXPECT_TRUE(std::isfinite(fp.support_ratio)) << miner;
    EXPECT_GE(fp.support_ratio, 0.0) << miner;
    EXPECT_LE(fp.support_ratio, 1.0) << miner;
    if (fp.saturated) {
      any_saturated = true;
      EXPECT_EQ(fp.support, kSaturatedCount) << miner;
    } else {
      EXPECT_LT(fp.support, kSaturatedCount) << miner;
    }
  }
  EXPECT_TRUE(any_saturated)
      << miner << ": expected at least one clamped support";
  EXPECT_EQ(result.longest_frequent_length, 12) << miner;
}

TEST(MinerSaturationTest, MppClampsSupport) {
  MiningResult result = *MineMpp(Homopolymer(300), SaturatingConfig());
  ExpectSaturatesCleanly(result, "mpp");
}

TEST(MinerSaturationTest, MppmClampsSupport) {
  MiningResult result = *MineMppm(Homopolymer(300), SaturatingConfig());
  ExpectSaturatesCleanly(result, "mppm");
}

TEST(MinerSaturationTest, EnumerationClampsSupport) {
  MiningResult result = *MineEnumeration(Homopolymer(300), SaturatingConfig());
  ExpectSaturatesCleanly(result, "enum");
}

TEST(MinerSaturationTest, AdaptiveClampsSupport) {
  MinerConfig config = SaturatingConfig();
  config.initial_n = 2;
  MiningResult result = *MineAdaptive(Homopolymer(300), config);
  ExpectSaturatesCleanly(result, "adaptive");
}

TEST(MinerSaturationTest, SaturatedFlagRoundsTripThroughLowerLevels) {
  // Shorter prefixes of the same run must not be flagged: the clamp applies
  // only where the count actually overflowed.
  MiningResult result = *MineMpp(Homopolymer(300), SaturatingConfig());
  for (const FrequentPattern& fp : result.patterns) {
    if (fp.pattern.length() <= 4) {
      EXPECT_FALSE(fp.saturated) << fp.pattern.ToShorthand();
    }
  }
}

}  // namespace
}  // namespace pgm
