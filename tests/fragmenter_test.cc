#include "seq/fragmenter.h"

#include <gtest/gtest.h>

namespace pgm {
namespace {

Sequence MakeSeq(std::size_t length) {
  std::string text;
  for (std::size_t i = 0; i < length; ++i) text.push_back("ACGT"[i % 4]);
  return *Sequence::FromString(text, Alphabet::Dna());
}

TEST(FragmenterTest, ExactDivision) {
  FragmenterOptions options;
  options.fragment_length = 4;
  auto fragments = *Fragment(MakeSeq(12), options);
  ASSERT_EQ(fragments.size(), 3u);
  for (const Sequence& f : fragments) EXPECT_EQ(f.size(), 4u);
  EXPECT_EQ(fragments[0].ToString(), "ACGT");
  EXPECT_EQ(fragments[1].ToString(), "ACGT");
}

TEST(FragmenterTest, TailDroppedByDefault) {
  FragmenterOptions options;
  options.fragment_length = 5;
  auto fragments = *Fragment(MakeSeq(12), options);
  EXPECT_EQ(fragments.size(), 2u);
}

TEST(FragmenterTest, TailKeptWhenRequested) {
  FragmenterOptions options;
  options.fragment_length = 5;
  options.keep_tail = true;
  auto fragments = *Fragment(MakeSeq(12), options);
  ASSERT_EQ(fragments.size(), 3u);
  EXPECT_EQ(fragments[2].size(), 2u);
}

TEST(FragmenterTest, SequenceShorterThanFragment) {
  FragmenterOptions options;
  options.fragment_length = 100;
  EXPECT_TRUE(Fragment(MakeSeq(12), options)->empty());
  options.keep_tail = true;
  auto fragments = *Fragment(MakeSeq(12), options);
  ASSERT_EQ(fragments.size(), 1u);
  EXPECT_EQ(fragments[0].size(), 12u);
}

// The boundary matrix: every off-by-one length around one and two windows,
// under both tail policies. keep_tail=false on L-1 is the documented
// empty-fragment-set case corpus callers must surface loudly.
TEST(FragmenterTest, BoundaryLengthMatrix) {
  constexpr std::size_t kL = 8;
  struct Case {
    std::size_t length;
    bool keep_tail;
    std::size_t fragments;
    std::size_t last_size;  // size of the final fragment (0 = none)
  };
  const Case cases[] = {
      {kL - 1, false, 0, 0},      {kL - 1, true, 1, kL - 1},
      {kL, false, 1, kL},         {kL, true, 1, kL},
      {kL + 1, false, 1, kL},     {kL + 1, true, 2, 1},
      {2 * kL - 1, false, 1, kL}, {2 * kL - 1, true, 2, kL - 1},
      {2 * kL, false, 2, kL},     {2 * kL, true, 2, kL},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE("length=" + std::to_string(c.length) +
                 " keep_tail=" + std::to_string(c.keep_tail));
    FragmenterOptions options;
    options.fragment_length = kL;
    options.keep_tail = c.keep_tail;
    auto fragments = *Fragment(MakeSeq(c.length), options);
    ASSERT_EQ(fragments.size(), c.fragments);
    for (std::size_t i = 0; i + 1 < fragments.size(); ++i) {
      EXPECT_EQ(fragments[i].size(), kL);  // only the tail may be short
    }
    if (!fragments.empty()) {
      EXPECT_EQ(fragments.back().size(), c.last_size);
    }
  }
}

TEST(FragmenterTest, EmptySequenceYieldsNoFragments) {
  const Sequence empty = *Sequence::FromString("", Alphabet::Dna());
  FragmenterOptions options;
  options.fragment_length = 8;
  EXPECT_TRUE(Fragment(empty, options)->empty());
  options.keep_tail = true;
  EXPECT_TRUE(Fragment(empty, options)->empty());
}

TEST(FragmenterTest, ZeroLengthIsError) {
  FragmenterOptions options;
  options.fragment_length = 0;
  EXPECT_FALSE(Fragment(MakeSeq(12), options).ok());
}

TEST(FragmenterTest, FragmentsCoverPrefixContiguously) {
  FragmenterOptions options;
  options.fragment_length = 3;
  Sequence seq = MakeSeq(10);
  auto fragments = *Fragment(seq, options);
  std::string reassembled;
  for (const Sequence& f : fragments) reassembled += f.ToString();
  EXPECT_EQ(reassembled, seq.Subsequence(0, 9).ToString());
}

TEST(RandomSegmentTest, SegmentHasRequestedLength) {
  Sequence seq = MakeSeq(100);
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    Sequence segment = *RandomSegment(seq, 17, rng);
    EXPECT_EQ(segment.size(), 17u);
  }
}

TEST(RandomSegmentTest, SegmentIsContiguousSlice) {
  Sequence seq = MakeSeq(40);  // periodic ACGT, so slices are recognizable
  Rng rng(6);
  Sequence segment = *RandomSegment(seq, 8, rng);
  // Every slice of the periodic sequence must itself be 4-periodic.
  for (std::size_t i = 4; i < segment.size(); ++i) {
    EXPECT_EQ(segment[i], segment[i - 4]);
  }
}

TEST(RandomSegmentTest, FullLengthSegmentIsWholeSequence) {
  Sequence seq = MakeSeq(10);
  Rng rng(7);
  EXPECT_EQ(RandomSegment(seq, 10, rng)->ToString(), seq.ToString());
}

TEST(RandomSegmentTest, ErrorsOnBadLength) {
  Sequence seq = MakeSeq(10);
  Rng rng(8);
  EXPECT_FALSE(RandomSegment(seq, 0, rng).ok());
  EXPECT_FALSE(RandomSegment(seq, 11, rng).ok());
}

TEST(RandomSegmentTest, UsesDifferentStarts) {
  Sequence seq = MakeSeq(1000);
  Rng rng(9);
  std::set<std::string> seen;
  for (int i = 0; i < 10; ++i) {
    seen.insert(RandomSegment(seq, 5, rng)->ToString());
  }
  // The periodic base sequence has only 4 distinct length-5 windows, so
  // just check we did not always land on one.
  EXPECT_GT(seen.size(), 1u);
}

}  // namespace
}  // namespace pgm
