#include "core/em.h"

#include <gtest/gtest.h>

#include <tuple>

#include "datagen/generators.h"
#include "util/random.h"

namespace pgm {
namespace {

TEST(EmTest, PaperTable2Exact) {
  Sequence s = *Sequence::FromString("ACGTCCGT", Alphabet::Dna());
  GapRequirement gap = *GapRequirement::Create(1, 2);
  EmResult result = *ComputeEm(s, gap, 2);
  EXPECT_EQ(result.k_values,
            (std::vector<std::uint64_t>{2, 1, 2, 1, 0, 0, 0, 0}));
  EXPECT_EQ(result.em, 2u);
  EXPECT_EQ(result.m, 2);
}

TEST(EmTest, RejectsNonPositiveM) {
  Sequence s = *Sequence::FromString("ACGT", Alphabet::Dna());
  GapRequirement gap = *GapRequirement::Create(1, 2);
  EXPECT_FALSE(ComputeEm(s, gap, 0).ok());
  EXPECT_FALSE(ComputeEm(s, gap, -3).ok());
}

TEST(EmTest, EmptySequence) {
  Sequence s = *Sequence::FromString("", Alphabet::Dna());
  GapRequirement gap = *GapRequirement::Create(1, 2);
  EmResult result = *ComputeEm(s, gap, 2);
  EXPECT_EQ(result.em, 0u);
  EXPECT_TRUE(result.k_values.empty());
}

TEST(EmTest, TooShortSequenceGivesZero) {
  // No complete length-(m+1) offset sequence fits: every K_r is 0.
  Sequence s = *Sequence::FromString("ACG", Alphabet::Dna());
  GapRequirement gap = *GapRequirement::Create(2, 3);
  EmResult result = *ComputeEm(s, gap, 2);
  EXPECT_EQ(result.em, 0u);
  for (std::uint64_t k : result.k_values) EXPECT_EQ(k, 0u);
}

TEST(EmTest, HomopolymerReachesWToTheM) {
  // In a long poly-A sequence every offset sequence spells the same string,
  // so K_r = W^m for positions with full room.
  Sequence s = *Sequence::FromString(std::string(60, 'A'), Alphabet::Dna());
  GapRequirement gap = *GapRequirement::Create(1, 3);  // W = 3
  EmResult result = *ComputeEm(s, gap, 3);
  EXPECT_EQ(result.em, 27u);  // 3^3
  EXPECT_EQ(result.k_values[0], 27u);
}

TEST(EmTest, KrDropsNearTheSequenceEnd) {
  Sequence s = *Sequence::FromString(std::string(20, 'A'), Alphabet::Dna());
  GapRequirement gap = *GapRequirement::Create(1, 3);
  EmResult result = *ComputeEm(s, gap, 2);
  // From position 19 nothing fits; from early positions all 9 fit.
  EXPECT_EQ(result.k_values[0], 9u);
  EXPECT_EQ(result.k_values[19], 0u);
  // Monotone decrease towards the end for homopolymers.
  for (std::size_t r = 1; r < s.size(); ++r) {
    EXPECT_LE(result.k_values[r], result.k_values[r - 1]);
  }
}

TEST(EmTest, AlternatingSequence) {
  // In (AT)^n with gap [1,1] (W = 1) there is exactly one offset sequence
  // per start, so K_r = 1 wherever one fits.
  Sequence s = *Sequence::FromString("ATATATATATAT", Alphabet::Dna());
  GapRequirement gap = *GapRequirement::Create(1, 1);
  EmResult result = *ComputeEm(s, gap, 3);
  EXPECT_EQ(result.em, 1u);
}

// Cross-validation against brute-force enumeration over random sequences.
class EmSweep : public testing::TestWithParam<
                    std::tuple<std::int64_t, std::int64_t, std::int64_t,
                               std::uint64_t>> {};

TEST_P(EmSweep, MatchesBruteForce) {
  const auto [N, M, m, seed] = GetParam();
  Rng rng(seed);
  GapRequirement gap = *GapRequirement::Create(N, M);
  Sequence s = *UniformRandomSequence(40, Alphabet::Dna(), rng);
  EmResult result = *ComputeEm(s, gap, m);
  std::uint64_t expected_em = 0;
  for (std::size_t r = 0; r < s.size(); ++r) {
    const std::uint64_t brute = BruteForceKr(s, gap, m, r);
    EXPECT_EQ(result.k_values[r], brute)
        << "r=" << r << " seq=" << s.ToString();
    expected_em = std::max(expected_em, brute);
  }
  EXPECT_EQ(result.em, expected_em);
}

INSTANTIATE_TEST_SUITE_P(
    RandomSequences, EmSweep,
    testing::Values(
        std::tuple<std::int64_t, std::int64_t, std::int64_t, std::uint64_t>{
            0, 1, 2, 11},
        std::tuple<std::int64_t, std::int64_t, std::int64_t, std::uint64_t>{
            1, 2, 3, 22},
        std::tuple<std::int64_t, std::int64_t, std::int64_t, std::uint64_t>{
            1, 3, 4, 33},
        std::tuple<std::int64_t, std::int64_t, std::int64_t, std::uint64_t>{
            2, 4, 3, 44},
        std::tuple<std::int64_t, std::int64_t, std::int64_t, std::uint64_t>{
            0, 3, 5, 55},
        std::tuple<std::int64_t, std::int64_t, std::int64_t, std::uint64_t>{
            3, 3, 4, 66},
        std::tuple<std::int64_t, std::int64_t, std::int64_t, std::uint64_t>{
            0, 4, 3, 77},
        std::tuple<std::int64_t, std::int64_t, std::int64_t, std::uint64_t>{
            2, 2, 6, 88}));

TEST(EmTest, RepetitiveSequenceCrossCheck) {
  // Noisy AT-repeat: exercises the branch-and-bound against multiplicity
  // merging (the case the naive "single path" prune got wrong).
  Sequence s = *Sequence::FromString("ATATATATCTATATATATGATATATATA",
                                     Alphabet::Dna());
  GapRequirement gap = *GapRequirement::Create(1, 3);
  const std::int64_t m = 4;
  EmResult result = *ComputeEm(s, gap, m);
  for (std::size_t r = 0; r < s.size(); ++r) {
    EXPECT_EQ(result.k_values[r], BruteForceKr(s, gap, m, r)) << "r=" << r;
  }
}

TEST(EmTest, ProteinAlphabet) {
  Sequence s = *Sequence::FromString("LWLWLWLWLWLW", Alphabet::Protein());
  GapRequirement gap = *GapRequirement::Create(1, 3);
  EmResult result = *ComputeEm(s, gap, 2);
  for (std::size_t r = 0; r < s.size(); ++r) {
    EXPECT_EQ(result.k_values[r], BruteForceKr(s, gap, 2, r)) << "r=" << r;
  }
}

}  // namespace
}  // namespace pgm
