#include "analysis/oscillation.h"

#include <gtest/gtest.h>

#include "datagen/generators.h"
#include "util/random.h"

namespace pgm {
namespace {

TEST(OscillationTest, PerfectPeriodTwo) {
  // S = (AT)^50, L = 100. The paper's statistic is the *unconditional*
  // pair frequency n_XY(p)/(L-p) minus pr(X)pr(Y):
  //   n_AT(1) = 50 (every A is followed by T)  -> 50/99 - 0.25
  //   n_AA(2) = 49                              -> 49/98 - 0.25
  //   n_AT(2) = 0                               -> 0     - 0.25
  std::string text;
  for (int i = 0; i < 50; ++i) text += "AT";
  Sequence s = *Sequence::FromString(text, Alphabet::Dna());
  EXPECT_NEAR(*BasePairCorrelation(s, 'A', 'T', 1), 50.0 / 99 - 0.25, 1e-9);
  EXPECT_NEAR(*BasePairCorrelation(s, 'A', 'A', 2), 49.0 / 98 - 0.25, 1e-9);
  EXPECT_NEAR(*BasePairCorrelation(s, 'A', 'T', 2), 0.0 - 0.25, 1e-9);
}

TEST(OscillationTest, RandomSequenceNearZero) {
  Rng rng(404);
  Sequence s = *UniformRandomSequence(20'000, Alphabet::Dna(), rng);
  for (std::int64_t p : {1, 5, 10, 11}) {
    EXPECT_NEAR(*BasePairCorrelation(s, 'A', 'T', p), 0.0, 0.01);
  }
}

TEST(OscillationTest, InvalidDistances) {
  Sequence s = *Sequence::FromString("ACGTACGT", Alphabet::Dna());
  EXPECT_FALSE(BasePairCorrelation(s, 'A', 'T', 0).ok());
  EXPECT_FALSE(BasePairCorrelation(s, 'A', 'T', -2).ok());
  EXPECT_FALSE(BasePairCorrelation(s, 'A', 'T', 8).ok());
  EXPECT_TRUE(BasePairCorrelation(s, 'A', 'T', 7).ok());
}

TEST(OscillationTest, InvalidCharacters) {
  Sequence s = *Sequence::FromString("ACGTACGT", Alphabet::Dna());
  EXPECT_FALSE(BasePairCorrelation(s, 'N', 'T', 1).ok());
  EXPECT_FALSE(BasePairCorrelation(s, 'A', 'Z', 1).ok());
}

TEST(SpectrumTest, ValuesMatchPointQueries) {
  Rng rng(405);
  Sequence s = *UniformRandomSequence(500, Alphabet::Dna(), rng);
  CorrelationSpectrum spectrum = *CorrelationSpectrumFor(s, 'A', 'T', 20);
  ASSERT_EQ(spectrum.values.size(), 20u);
  EXPECT_EQ(spectrum.x, 'A');
  EXPECT_EQ(spectrum.y, 'T');
  for (std::int64_t p = 1; p <= 20; ++p) {
    EXPECT_NEAR(spectrum.values[p - 1], *BasePairCorrelation(s, 'A', 'T', p),
                1e-12);
  }
}

TEST(SpectrumTest, InvalidMaxDistance) {
  Sequence s = *Sequence::FromString("ACGT", Alphabet::Dna());
  EXPECT_FALSE(CorrelationSpectrumFor(s, 'A', 'T', 0).ok());
  EXPECT_FALSE(CorrelationSpectrumFor(s, 'A', 'T', 4).ok());
}

TEST(SpectrumTest, PlantedHelicalPeriodShowsPeak) {
  // Plant 'A'...'A' pairs at distance 10 on a random background: the AA
  // spectrum must peak at 10.
  Rng rng(406);
  Sequence s = *UniformRandomSequence(4000, Alphabet::Dna(), rng);
  std::vector<Symbol> symbols = s.symbols();
  Symbol a = Alphabet::Dna().Encode('A');
  // Stride 29 so the secondary planted distances (19, 29) fall outside the
  // inspected range [1, 15].
  for (std::size_t i = 0; i + 10 < symbols.size(); i += 29) {
    symbols[i] = a;
    symbols[i + 10] = a;
  }
  s = *Sequence::FromSymbols(symbols, Alphabet::Dna());
  CorrelationSpectrum spectrum = *CorrelationSpectrumFor(s, 'A', 'A', 15);
  // Distance 10 dominates every other distance.
  for (std::size_t i = 0; i < spectrum.values.size(); ++i) {
    if (i != 9) {
      EXPECT_GT(spectrum.values[9], spectrum.values[i]);
    }
  }
  std::vector<std::int64_t> peaks = FindPeaks(spectrum, 0.01);
  ASSERT_FALSE(peaks.empty());
  EXPECT_EQ(peaks[0], 10);
}

TEST(FindPeaksTest, StrictLocalMaxima) {
  CorrelationSpectrum spectrum;
  spectrum.values = {0.1, 0.5, 0.2, 0.6, 0.6, 0.3, 0.9};
  // 0.5 at p=2 is a peak; the 0.6 plateau is not (not strictly greater);
  // 0.9 at the boundary p=7 is a peak.
  EXPECT_EQ(FindPeaks(spectrum, 0.0),
            (std::vector<std::int64_t>{2, 7}));
}

TEST(FindPeaksTest, ThresholdFilters) {
  CorrelationSpectrum spectrum;
  spectrum.values = {0.1, 0.5, 0.2, 0.05, 0.3, 0.1};
  EXPECT_EQ(FindPeaks(spectrum, 0.4), (std::vector<std::int64_t>{2}));
  EXPECT_TRUE(FindPeaks(spectrum, 0.9).empty());
}

TEST(FindPeaksTest, EmptySpectrum) {
  CorrelationSpectrum spectrum;
  EXPECT_TRUE(FindPeaks(spectrum, 0.0).empty());
}

}  // namespace
}  // namespace pgm
