#include "util/csv_writer.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace pgm {
namespace {

TEST(CsvWriterTest, HeaderOnly) {
  CsvWriter csv({"a", "b"});
  EXPECT_EQ(csv.ToString(), "a,b\n");
  EXPECT_EQ(csv.num_columns(), 2u);
  EXPECT_EQ(csv.num_rows(), 0u);
}

TEST(CsvWriterTest, SimpleRows) {
  CsvWriter csv({"x", "y"});
  ASSERT_TRUE(csv.AddRow({"1", "2"}).ok());
  ASSERT_TRUE(csv.AddRow({"3", "4"}).ok());
  EXPECT_EQ(csv.ToString(), "x,y\n1,2\n3,4\n");
}

TEST(CsvWriterTest, RejectsWrongCellCount) {
  CsvWriter csv({"x", "y"});
  EXPECT_FALSE(csv.AddRow({"1"}).ok());
  EXPECT_FALSE(csv.AddRow({"1", "2", "3"}).ok());
  EXPECT_EQ(csv.num_rows(), 0u);
}

TEST(CsvWriterTest, EscapesCommasQuotesNewlines) {
  CsvWriter csv({"v"});
  ASSERT_TRUE(csv.AddRow({"a,b"}).ok());
  ASSERT_TRUE(csv.AddRow({"say \"hi\""}).ok());
  ASSERT_TRUE(csv.AddRow({"line1\nline2"}).ok());
  EXPECT_EQ(csv.ToString(),
            "v\n\"a,b\"\n\"say \"\"hi\"\"\"\n\"line1\nline2\"\n");
}

TEST(CsvWriterTest, EscapesHeaderToo) {
  CsvWriter csv({"a,b"});
  EXPECT_EQ(csv.ToString(), "\"a,b\"\n");
}

TEST(CsvWriterTest, RowBuilderMixedTypes) {
  CsvWriter csv({"s", "d", "i", "u"});
  ASSERT_TRUE(csv.Row()
                  .Add("text")
                  .Add(1.25)
                  .Add(static_cast<std::int64_t>(-3))
                  .Add(static_cast<std::uint64_t>(9))
                  .Done()
                  .ok());
  EXPECT_EQ(csv.ToString(), "s,d,i,u\ntext,1.25,-3,9\n");
}

TEST(CsvWriterTest, RowBuilderWrongArity) {
  CsvWriter csv({"a", "b"});
  EXPECT_FALSE(csv.Row().Add("only-one").Done().ok());
}

TEST(CsvWriterTest, WriteToFileRoundTrips) {
  CsvWriter csv({"k", "v"});
  ASSERT_TRUE(csv.AddRow({"alpha", "1"}).ok());
  const std::string path = testing::TempDir() + "/csv_writer_test.csv";
  ASSERT_TRUE(csv.WriteToFile(path).ok());

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buffer[256] = {};
  std::size_t n = std::fread(buffer, 1, sizeof(buffer) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(std::string(buffer, n), "k,v\nalpha,1\n");
}

TEST(CsvWriterTest, WriteToBadPathFails) {
  CsvWriter csv({"a"});
  Status status = csv.WriteToFile("/nonexistent-dir-xyz/file.csv");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace pgm
