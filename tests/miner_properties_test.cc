// Model-level invariants checked on randomized inputs — properties that
// must hold for ANY correct implementation of the paper's model, derived
// from the definitions rather than from our code.

#include <gtest/gtest.h>

#include <iterator>

#include "core/miner.h"
#include "core/offset_counter.h"
#include "core/verifier.h"
#include "datagen/generators.h"
#include "util/random.h"

namespace pgm {
namespace {

Pattern RandomPattern(Rng& rng, std::size_t length, const Alphabet& alphabet) {
  std::vector<Symbol> symbols;
  for (std::size_t i = 0; i < length; ++i) {
    symbols.push_back(static_cast<Symbol>(rng.UniformInt(alphabet.size())));
  }
  return *Pattern::FromSymbols(std::move(symbols), alphabet);
}

// sup(P) <= N_l: every matching offset sequence is an offset sequence.
TEST(ModelPropertyTest, SupportNeverExceedsOffsetSequenceCount) {
  Rng rng(9001);
  GapRequirement gap = *GapRequirement::Create(1, 3);
  for (int trial = 0; trial < 25; ++trial) {
    Sequence s = *UniformRandomSequence(50, Alphabet::Dna(), rng);
    OffsetCounter counter(50, gap);
    const std::size_t length = 1 + rng.UniformInt(6);
    Pattern p = RandomPattern(rng, length, Alphabet::Dna());
    const std::uint64_t support = CountSupport(s, p, gap)->count;
    EXPECT_LE(static_cast<long double>(support),
              counter.Count(static_cast<std::int64_t>(length)) + 0.5L)
        << p.ToShorthand();
  }
}

// Summing sup(P) over all length-l patterns gives exactly N_l: every
// offset sequence spells exactly one pattern.
TEST(ModelPropertyTest, SupportsPartitionOffsetSequences) {
  Rng rng(9002);
  GapRequirement gap = *GapRequirement::Create(2, 4);
  Sequence s = *UniformRandomSequence(40, Alphabet::Dna(), rng);
  OffsetCounter counter(40, gap);
  for (std::size_t l = 1; l <= 3; ++l) {
    unsigned __int128 total = 0;
    // Base-4 odometer in a fixed-size buffer: a heap vector here makes
    // GCC's -Wstringop-overflow invent an out-of-bounds write on a path
    // it cannot prove dead.
    Symbol digits[3] = {0, 0, 0};
    ASSERT_LE(l, std::size(digits));
    while (true) {
      std::vector<Symbol> symbols(digits, digits + l);
      Pattern p = *Pattern::FromSymbols(std::move(symbols), Alphabet::Dna());
      total += CountSupport(s, p, gap)->count;
      std::size_t pos = 0;
      for (; pos < l; ++pos) {
        if (++digits[pos] != 4) break;
        digits[pos] = 0;
      }
      if (pos == l) break;
    }
    EXPECT_EQ(static_cast<std::uint64_t>(total),
              static_cast<std::uint64_t>(
                  counter.Count(static_cast<std::int64_t>(l)) + 0.5L))
        << "l=" << l;
  }
}

// Reversal symmetry: sup(P in S) == sup(reverse(P) in reverse(S)). Offset
// sequences map bijectively under position reversal.
TEST(ModelPropertyTest, ReversalSymmetry) {
  Rng rng(9003);
  GapRequirement gap = *GapRequirement::Create(1, 4);
  for (int trial = 0; trial < 25; ++trial) {
    Sequence s = *UniformRandomSequence(45, Alphabet::Dna(), rng);
    const std::size_t length = 1 + rng.UniformInt(5);
    Pattern p = RandomPattern(rng, length, Alphabet::Dna());
    std::vector<Symbol> reversed_symbols(p.symbols().rbegin(),
                                         p.symbols().rend());
    Pattern reversed = *Pattern::FromSymbols(reversed_symbols, Alphabet::Dna());
    EXPECT_EQ(CountSupport(s, p, gap)->count,
              CountSupport(s.Reversed(), reversed, gap)->count)
        << p.ToShorthand();
  }
}

// Extending the subject sequence can only add matches.
TEST(ModelPropertyTest, SupportMonotoneUnderSequenceExtension) {
  Rng rng(9004);
  GapRequirement gap = *GapRequirement::Create(1, 3);
  Sequence full = *UniformRandomSequence(80, Alphabet::Dna(), rng);
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t length = 2 + rng.UniformInt(4);
    Pattern p = RandomPattern(rng, length, Alphabet::Dna());
    std::uint64_t previous = 0;
    for (std::size_t prefix_len : {20u, 40u, 60u, 80u}) {
      const std::uint64_t support =
          CountSupport(full.Subsequence(0, prefix_len), p, gap)->count;
      EXPECT_GE(support, previous) << p.ToShorthand() << " L=" << prefix_len;
      previous = support;
    }
  }
}

// Raising ρs can only shrink the result, and the two results agree on
// the shared patterns.
TEST(ModelPropertyTest, ResultMonotoneInThreshold) {
  Rng rng(9005);
  Sequence s = *UniformRandomSequence(100, Alphabet::Dna(), rng);
  MinerConfig low;
  low.min_gap = 1;
  low.max_gap = 3;
  low.min_support_ratio = 0.005;
  low.start_length = 1;
  MinerConfig high = low;
  high.min_support_ratio = 0.02;
  MiningResult low_result = *MineMpp(s, low);
  MiningResult high_result = *MineMpp(s, high);
  EXPECT_GE(low_result.patterns.size(), high_result.patterns.size());
  std::map<std::string, std::uint64_t> low_map;
  for (const FrequentPattern& fp : low_result.patterns) {
    low_map[fp.pattern.ToShorthand()] = fp.support;
  }
  for (const FrequentPattern& fp : high_result.patterns) {
    auto it = low_map.find(fp.pattern.ToShorthand());
    ASSERT_TRUE(it != low_map.end()) << fp.pattern.ToShorthand();
    EXPECT_EQ(it->second, fp.support);
  }
}

// Full determinism: identical inputs give bit-identical results.
TEST(ModelPropertyTest, MinersAreDeterministic) {
  Rng rng(9006);
  Sequence s = *UniformRandomSequence(90, Alphabet::Dna(), rng);
  MinerConfig config;
  config.min_gap = 1;
  config.max_gap = 3;
  config.min_support_ratio = 0.01;
  config.start_length = 2;
  config.em_order = 3;
  MiningResult a = *MineMppm(s, config);
  MiningResult b = *MineMppm(s, config);
  ASSERT_EQ(a.patterns.size(), b.patterns.size());
  for (std::size_t i = 0; i < a.patterns.size(); ++i) {
    EXPECT_TRUE(a.patterns[i].pattern == b.patterns[i].pattern);
    EXPECT_EQ(a.patterns[i].support, b.patterns[i].support);
  }
  EXPECT_EQ(a.estimated_n, b.estimated_n);
  EXPECT_EQ(a.em, b.em);
  EXPECT_EQ(a.total_candidates, b.total_candidates);
}

// The gap-vector extension degenerates to the uniform model when every
// gap carries the same requirement.
TEST(GapVectorTest, UniformVectorMatchesUniformModel) {
  Rng rng(9007);
  GapRequirement gap = *GapRequirement::Create(2, 4);
  for (int trial = 0; trial < 20; ++trial) {
    Sequence s = *UniformRandomSequence(60, Alphabet::Dna(), rng);
    const std::size_t length = 2 + rng.UniformInt(4);
    Pattern p = RandomPattern(rng, length, Alphabet::Dna());
    std::vector<GapRequirement> gaps(length - 1, gap);
    EXPECT_EQ(CountSupportWithGapVector(s, p, gaps)->count,
              CountSupport(s, p, gap)->count)
        << p.ToShorthand();
  }
}

TEST(GapVectorTest, HeterogeneousGapsCountByHand) {
  // S = ACAGT (0-based). P = A?C..T with gaps [0,0] then [1,2]? Work a
  // tiny case: P = AAG, gap1 = [1,1] (exactly one wildcard), gap2 = [0,0]
  // (adjacent): matches need A at x, A at x+2, G at x+3: x=0: A,A,G ✓.
  Sequence s = *Sequence::FromString("ACAGT", Alphabet::Dna());
  Pattern p = *Pattern::Parse("AAG", Alphabet::Dna());
  std::vector<GapRequirement> gaps = {*GapRequirement::Create(1, 1),
                                      *GapRequirement::Create(0, 0)};
  EXPECT_EQ(CountSupportWithGapVector(s, p, gaps)->count, 1u);
  // Swapping the gaps breaks the only match.
  std::vector<GapRequirement> swapped = {*GapRequirement::Create(0, 0),
                                         *GapRequirement::Create(1, 1)};
  EXPECT_EQ(CountSupportWithGapVector(s, p, swapped)->count, 0u);
}

TEST(GapVectorTest, ValidatesArity) {
  Sequence s = *Sequence::FromString("ACGT", Alphabet::Dna());
  Pattern p = *Pattern::Parse("AC", Alphabet::Dna());
  EXPECT_FALSE(CountSupportWithGapVector(s, p, {}).ok());
  std::vector<GapRequirement> too_many(2, *GapRequirement::Create(0, 1));
  EXPECT_FALSE(CountSupportWithGapVector(s, p, too_many).ok());
}

}  // namespace
}  // namespace pgm
