// The fault campaign for the mining service: admission shedding under
// queue saturation, transient-fault recovery vs. loud permanent failures,
// budget clamping, every TerminationReason, cache behavior, graceful drain,
// and the serve.* metrics/trace contract. Every scenario is deterministic —
// fault injection and latches, never timing.

#include "serve/service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "core/trace.h"
#include "seq/alphabet.h"
#include "seq/sequence.h"
#include "serve/job.h"
#include "util/backoff.h"
#include "util/fault_injection.h"
#include "util/io.h"
#include "util/metrics.h"

namespace pgm {
namespace {

constexpr char kDna[] = "ACGTACGTACGGTTACACGTACGTAACCGGTT";

// A loader that treats the input spec as literal DNA residues.
ServiceConfig InlineLoaderConfig() {
  ServiceConfig config;
  config.loader = [](const std::string& input) -> StatusOr<Sequence> {
    return Sequence::FromString(input, Alphabet::Dna());
  };
  return config;
}

MiningJob DnaJob(const std::string& residues = kDna) {
  MiningJob job;
  job.input = residues;
  job.config.min_support_ratio = 0.5;
  return job;
}

std::string WriteTempFile(const std::string& name,
                          const std::string& contents) {
  const std::string path = testing::TempDir() + "/" + name;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  EXPECT_NE(f, nullptr);
  std::fwrite(contents.data(), 1, contents.size(), f);
  std::fclose(f);
  return path;
}

// A loader that reads the input spec as a path of raw residues — the route
// ScopedFileFault can intercept.
ServiceConfig FileLoaderConfig() {
  ServiceConfig config;
  config.loader = [](const std::string& input) -> StatusOr<Sequence> {
    PGM_ASSIGN_OR_RETURN(std::string text, ReadFileToString(input));
    return Sequence::FromString(text, Alphabet::Dna());
  };
  return config;
}

// --- Admission control ---

TEST(ServiceTest, BatchOfJobsCompletes) {
  MiningService service(InlineLoaderConfig());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(service.Submit(DnaJob()).ok());
  }
  service.Start();
  std::vector<JobResponse> responses = service.Join();
  ASSERT_EQ(responses.size(), 3u);
  for (const JobResponse& response : responses) {
    EXPECT_TRUE(response.status.ok());
    EXPECT_EQ(response.result.termination, TerminationReason::kCompleted);
    EXPECT_GT(response.result.patterns.size(), 0u);
  }
  EXPECT_EQ(service.metrics().CounterValue("serve.jobs.completed"), 3u);
  EXPECT_EQ(service.metrics().CounterValue("serve.jobs.shed"), 0u);
}

TEST(ServiceTest, QueueSaturationShedsDeterministically) {
  ServiceConfig config = InlineLoaderConfig();
  config.queue_capacity = 2;
  config.retry_after_ms = 75;
  MiningService service(config);

  // All submissions land before the drain starts, so exactly the first two
  // are admitted and the rest shed — no race with the workers.
  std::vector<bool> admitted;
  for (int i = 0; i < 5; ++i) {
    admitted.push_back(service.Submit(DnaJob()).ok());
  }
  EXPECT_EQ(admitted, (std::vector<bool>{true, true, false, false, false}));

  service.Start();
  std::vector<JobResponse> responses = service.Join();
  ASSERT_EQ(responses.size(), 5u) << "shed jobs must still be accounted for";
  for (std::size_t i = 0; i < responses.size(); ++i) {
    EXPECT_EQ(responses[i].id, static_cast<std::int64_t>(i + 1));
    if (i < 2) {
      EXPECT_TRUE(responses[i].status.ok());
    } else {
      EXPECT_EQ(responses[i].status.code(), StatusCode::kUnavailable);
      EXPECT_EQ(responses[i].retry_after_ms, 75);
      EXPECT_NE(responses[i].status.message().find("queue full"),
                std::string::npos);
    }
  }
  EXPECT_EQ(service.metrics().CounterValue("serve.jobs.shed"), 3u);
  EXPECT_EQ(service.metrics().CounterValue("serve.jobs.admitted"), 2u);
}

TEST(ServiceTest, SubmitAfterShutdownIsShedAsDraining) {
  MiningService service(InlineLoaderConfig());
  service.Start();
  service.BeginShutdown();
  StatusOr<std::int64_t> id = service.Submit(DnaJob());
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(id.status().message().find("service draining"), std::string::npos);
  std::vector<JobResponse> responses = service.Join();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status.code(), StatusCode::kUnavailable);
}

// --- Input faults ---

TEST(ServiceTest, TransientLoadFaultRecoversViaRetry) {
  const std::string path = WriteTempFile("serve_transient.txt", kDna);
  ServiceConfig config = FileLoaderConfig();
  config.io_retry.max_attempts = 3;
  config.io_retry.base_delay_ms = 5;
  MiningService service(config);

  FileFault fault;
  fault.kind = FileFault::Kind::kOpenError;
  fault.max_hits = 1;  // first attempt fails, the retry succeeds
  ScopedFileFault scope(fault);
  ScopedBackoffRecorder backoff;

  MiningJob job = DnaJob();
  job.input = path;
  ASSERT_TRUE(service.Submit(std::move(job)).ok());
  service.Start();
  std::vector<JobResponse> responses = service.Join();

  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(responses[0].status.ok());
  EXPECT_EQ(responses[0].load_attempts, 2);
  EXPECT_EQ(responses[0].result.termination, TerminationReason::kCompleted);
  EXPECT_EQ(scope.hits(), 1);
  EXPECT_EQ(service.metrics().CounterValue("serve.retries.attempted"), 1u);
  EXPECT_EQ(service.metrics().CounterValue("serve.retries.recovered"), 1u);
  std::remove(path.c_str());
}

TEST(ServiceTest, PermanentLoadFaultFailsLoudlyAfterRetries) {
  const std::string path = WriteTempFile("serve_permanent.txt", kDna);
  ServiceConfig config = FileLoaderConfig();
  config.io_retry.max_attempts = 3;
  config.io_retry.base_delay_ms = 5;
  MiningService service(config);

  FileFault fault;
  fault.kind = FileFault::Kind::kOpenError;  // max_hits 0 = permanent
  ScopedFileFault scope(fault);
  ScopedBackoffRecorder backoff;

  MiningJob job = DnaJob();
  job.input = path;
  ASSERT_TRUE(service.Submit(std::move(job)).ok());
  service.Start();
  std::vector<JobResponse> responses = service.Join();

  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status.code(), StatusCode::kIoError);
  EXPECT_EQ(responses[0].load_attempts, 3);
  EXPECT_EQ(scope.hits(), 3);
  EXPECT_EQ(service.metrics().CounterValue("serve.jobs.failed"), 1u);
  EXPECT_EQ(service.metrics().CounterValue("serve.retries.attempted"), 2u);
  EXPECT_EQ(service.metrics().CounterValue("serve.retries.recovered"), 0u);
  std::remove(path.c_str());
}

TEST(ServiceTest, CorruptInputIsNeverRetried) {
  ServiceConfig config;
  std::atomic<int> calls{0};
  config.io_retry.max_attempts = 5;
  config.loader = [&calls](const std::string&) -> StatusOr<Sequence> {
    calls.fetch_add(1);
    return Status::Corruption("bad residues");
  };
  MiningService service(config);
  ASSERT_TRUE(service.Submit(DnaJob()).ok());
  service.Start();
  std::vector<JobResponse> responses = service.Join();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status.code(), StatusCode::kCorruption);
  EXPECT_EQ(responses[0].load_attempts, 1);
  EXPECT_EQ(calls.load(), 1) << "retry must not mask corrupt bytes";
}

TEST(ServiceTest, UnknownAlgorithmIsInvalidArgument) {
  MiningService service(InlineLoaderConfig());
  MiningJob job = DnaJob();
  job.algorithm = "bogus";
  ASSERT_TRUE(service.Submit(std::move(job)).ok());
  service.Start();
  std::vector<JobResponse> responses = service.Join();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status.code(), StatusCode::kInvalidArgument);
}

// --- Budget clamping and graceful degradation ---

TEST(ServiceTest, ClampTable) {
  ServiceConfig config = InlineLoaderConfig();
  config.max_deadline_ms = 100;
  config.default_limits.deadline_ms = 200;  // flag ceiling; 100 wins
  config.default_limits.pil_memory_budget_bytes = 1000;
  config.default_limits.max_level_candidates = 50;
  config.default_limits.max_total_candidates = 500;
  MiningService service(config);

  // "Unlimited" requests land exactly on the ceilings.
  ResourceLimits unlimited;
  ResourceLimits effective = service.ClampLimits(unlimited);
  EXPECT_EQ(effective.deadline_ms, 100);
  EXPECT_EQ(effective.pil_memory_budget_bytes, 1000u);
  EXPECT_EQ(effective.max_level_candidates, 50u);
  EXPECT_EQ(effective.max_total_candidates, 500u);

  // Requests under the ceilings pass through untouched.
  ResourceLimits modest;
  modest.deadline_ms = 50;
  modest.pil_memory_budget_bytes = 500;
  modest.max_level_candidates = 10;
  modest.max_total_candidates = 100;
  effective = service.ClampLimits(modest);
  EXPECT_EQ(effective.deadline_ms, 50);
  EXPECT_EQ(effective.pil_memory_budget_bytes, 500u);
  EXPECT_EQ(effective.max_level_candidates, 10u);
  EXPECT_EQ(effective.max_total_candidates, 100u);

  // Greedy requests are clamped down, never up.
  ResourceLimits greedy;
  greedy.deadline_ms = 9999;
  greedy.pil_memory_budget_bytes = 1u << 30;
  greedy.max_level_candidates = 5000;
  greedy.max_total_candidates = 50000;
  effective = service.ClampLimits(greedy);
  EXPECT_EQ(effective.deadline_ms, 100);
  EXPECT_EQ(effective.pil_memory_budget_bytes, 1000u);
  EXPECT_EQ(effective.max_level_candidates, 50u);
  EXPECT_EQ(effective.max_total_candidates, 500u);
}

TEST(ServiceTest, NoCeilingsMeansRequestsPassThrough) {
  MiningService service(InlineLoaderConfig());
  ResourceLimits requested;
  requested.deadline_ms = 1234;
  requested.max_total_candidates = 42;
  ResourceLimits effective = service.ClampLimits(requested);
  EXPECT_EQ(effective.deadline_ms, 1234);
  EXPECT_EQ(effective.max_total_candidates, 42u);
  EXPECT_EQ(effective.pil_memory_budget_bytes, 0u);
}

TEST(ServiceTest, BudgetTripsDegradeToPartialResults) {
  // Each poisoned budget must surface as an OK response whose termination
  // names the tripped budget — graceful degradation, not failure.
  struct Case {
    const char* name;
    ResourceLimits limits;
    TerminationReason want;
  };
  std::vector<Case> cases;
  Case deadline;
  deadline.name = "deadline";
  deadline.limits.deadline_ms = 0;  // trips at the first guard check
  deadline.want = TerminationReason::kDeadline;
  cases.push_back(deadline);
  Case memory;
  memory.name = "memory";
  memory.limits.pil_memory_budget_bytes = 1;
  memory.want = TerminationReason::kMemoryBudget;
  cases.push_back(memory);
  Case cap;
  cap.name = "cap";
  cap.limits.max_total_candidates = 1;
  cap.want = TerminationReason::kCandidateCap;
  cases.push_back(cap);

  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    MiningService service(InlineLoaderConfig());
    MiningJob job = DnaJob();
    job.config.limits = c.limits;
    ASSERT_TRUE(service.Submit(std::move(job)).ok());
    service.Start();
    std::vector<JobResponse> responses = service.Join();
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_TRUE(responses[0].status.ok())
        << "budget exhaustion is not an error";
    EXPECT_EQ(responses[0].result.termination, c.want);
    EXPECT_EQ(service.metrics().CounterValue(
                  std::string("serve.termination.") +
                  TerminationReasonToString(c.want)),
              1u);
  }
}

TEST(ServiceTest, ServerCeilingClampsAndCounts) {
  ServiceConfig config = InlineLoaderConfig();
  config.max_deadline_ms = 0;  // pathological ceiling: everything trips
  MiningService service(config);
  ASSERT_TRUE(service.Submit(DnaJob()).ok());
  service.Start();
  std::vector<JobResponse> responses = service.Join();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(responses[0].status.ok());
  EXPECT_EQ(responses[0].result.termination, TerminationReason::kDeadline);
  EXPECT_EQ(service.metrics().CounterValue("serve.deadline.clamped"), 1u);
}

// --- Result cache ---

TEST(ServiceTest, RepeatJobHitsCacheAndMatchesMinedResult) {
  ServiceConfig config = InlineLoaderConfig();
  config.cache_capacity_bytes = 1 << 20;
  config.workers = 1;  // serial drain: the repeat is guaranteed to follow
  MiningService service(config);
  ASSERT_TRUE(service.Submit(DnaJob()).ok());
  ASSERT_TRUE(service.Submit(DnaJob()).ok());  // same sequence + config
  MiningJob other = DnaJob("TTTTGGGGTTTTGGGG");
  ASSERT_TRUE(service.Submit(std::move(other)).ok());
  service.Start();
  std::vector<JobResponse> responses = service.Join();

  ASSERT_EQ(responses.size(), 3u);
  EXPECT_FALSE(responses[0].cache_hit);
  EXPECT_TRUE(responses[1].cache_hit);
  EXPECT_FALSE(responses[2].cache_hit);
  ASSERT_EQ(responses[0].result.patterns.size(),
            responses[1].result.patterns.size());
  for (std::size_t i = 0; i < responses[0].result.patterns.size(); ++i) {
    EXPECT_EQ(responses[0].result.patterns[i].pattern,
              responses[1].result.patterns[i].pattern);
    EXPECT_EQ(responses[0].result.patterns[i].support,
              responses[1].result.patterns[i].support);
  }
  EXPECT_EQ(service.metrics().CounterValue("serve.cache.hits"), 1u);
  EXPECT_EQ(service.metrics().CounterValue("serve.cache.insertions"), 2u);
}

TEST(ServiceTest, PartialResultsAreNeverCached) {
  ServiceConfig config = InlineLoaderConfig();
  config.cache_capacity_bytes = 1 << 20;
  config.workers = 1;
  MiningService service(config);
  MiningJob tripped = DnaJob();
  tripped.config.limits.deadline_ms = 0;
  ASSERT_TRUE(service.Submit(std::move(tripped)).ok());
  MiningJob again = DnaJob();
  again.config.limits.deadline_ms = 0;
  ASSERT_TRUE(service.Submit(std::move(again)).ok());
  service.Start();
  std::vector<JobResponse> responses = service.Join();
  ASSERT_EQ(responses.size(), 2u);
  // The second identical partial job must re-mine, not inherit the trip.
  EXPECT_FALSE(responses[0].cache_hit);
  EXPECT_FALSE(responses[1].cache_hit);
  EXPECT_EQ(service.cache().entry_count(), 0u);
}

// --- Graceful drain ---

TEST(ServiceTest, ShutdownCancelsInFlightAndQueuedJobs) {
  std::promise<void> first_started;
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  std::atomic<bool> first{true};

  ServiceConfig config;
  config.workers = 1;
  config.loader =
      [&](const std::string& input) -> StatusOr<Sequence> {
    if (first.exchange(false)) {
      first_started.set_value();
      release_future.wait();  // hold job 1 until the drain has begun
    }
    return Sequence::FromString(input, Alphabet::Dna());
  };
  MiningService service(config);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(service.Submit(DnaJob()).ok());
  }
  service.Start();
  first_started.get_future().wait();
  service.BeginShutdown();  // in-flight job 1, queued jobs 2 and 3
  release.set_value();
  std::vector<JobResponse> responses = service.Join();

  ASSERT_EQ(responses.size(), 3u) << "drain must flush every admitted job";
  for (const JobResponse& response : responses) {
    EXPECT_TRUE(response.status.ok());
    EXPECT_EQ(response.result.termination, TerminationReason::kCancelled)
        << "cancelled partials keep their termination reason";
  }
  EXPECT_EQ(service.metrics().CounterValue("serve.shutdown.begun"), 1u);
  EXPECT_EQ(
      service.metrics().CounterValue("serve.termination.cancelled"), 3u);
}

TEST(ServiceTest, BeginShutdownIsIdempotent) {
  MiningService service(InlineLoaderConfig());
  service.BeginShutdown();
  service.BeginShutdown();
  EXPECT_TRUE(service.draining());
  EXPECT_TRUE(service.cancel_token().cancelled());
  EXPECT_EQ(service.metrics().CounterValue("serve.shutdown.begun"), 1u);
  // No jobs were submitted; the drain is only joined, not inspected.
  (void)service.Join();
}

// --- Observability ---

TEST(ServiceTest, TraceRecordsJobLifecycleAndShedding) {
  MetricsRegistry metrics;
  MiningTrace trace;
  MiningObserver observer;
  observer.metrics = &metrics;
  observer.trace = &trace;
  ServiceConfig config = InlineLoaderConfig();
  config.queue_capacity = 1;
  config.retry_after_ms = 33;
  config.observer = &observer;
  MiningService service(config);
  ASSERT_TRUE(service.Submit(DnaJob()).ok());
  ASSERT_FALSE(service.Submit(DnaJob()).ok());  // shed
  service.Start();
  // The assertions below read the trace, not the responses.
  (void)service.Join();

  int admitted = 0, shed = 0, started = 0, ended = 0;
  for (const TraceEvent& event : trace.events()) {
    switch (event.kind) {
      case TraceEventKind::kJobAdmitted:
        ++admitted;
        break;
      case TraceEventKind::kJobShed:
        ++shed;
        EXPECT_EQ(event.retry_after_ms, 33);
        break;
      case TraceEventKind::kJobStart:
        ++started;
        break;
      case TraceEventKind::kJobEnd:
        ++ended;
        EXPECT_EQ(event.detail, "completed");
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(admitted, 1);
  EXPECT_EQ(shed, 1);
  EXPECT_EQ(started, 1);
  EXPECT_EQ(ended, 1);
  // serve.* metrics landed in the observer's registry, not a private one.
  EXPECT_EQ(&service.metrics(), &metrics);
  EXPECT_EQ(metrics.CounterValue("serve.jobs.shed"), 1u);
}

// --- Determinism across worker counts ---

TEST(ServiceTest, CompletedResultsAreIdenticalAcrossWorkerCounts) {
  auto run = [](std::size_t workers) {
    ServiceConfig config = InlineLoaderConfig();
    config.workers = workers;
    MiningService service(config);
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE(service.Submit(DnaJob()).ok());
    }
    service.Start();
    return service.Join();
  };
  std::vector<JobResponse> serial = run(1);
  std::vector<JobResponse> parallel = run(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].result.patterns.size(),
              parallel[i].result.patterns.size());
    for (std::size_t p = 0; p < serial[i].result.patterns.size(); ++p) {
      EXPECT_EQ(serial[i].result.patterns[p].pattern,
                parallel[i].result.patterns[p].pattern);
      EXPECT_EQ(serial[i].result.patterns[p].support,
                parallel[i].result.patterns[p].support);
    }
  }
}

}  // namespace
}  // namespace pgm
