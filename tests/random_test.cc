#include "util/random.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace pgm {
namespace {

TEST(SplitMix64Test, MatchesReferenceVector) {
  // Reference values for seed 0 from the SplitMix64 reference
  // implementation (Vigna).
  std::uint64_t state = 0;
  EXPECT_EQ(SplitMix64(state), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(SplitMix64(state), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(SplitMix64(state), 0x06C45D188009454FULL);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 12);
}

TEST(RngTest, UniformIntStaysInBounds) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformInt(bound), bound);
    }
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(6));
  EXPECT_EQ(seen.size(), 6u);
}

TEST(RngTest, UniformIntRoughlyUniform) {
  Rng rng(11);
  const int kBuckets = 8, kSamples = 80'000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.UniformInt(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

TEST(RngTest, UniformRangeInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    std::int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformRangeSingleton) {
  Rng rng(15);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformRange(5, 5), 5);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-1.0));
    EXPECT_TRUE(rng.Bernoulli(2.0));
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(21);
  int hits = 0;
  const int kSamples = 50'000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.02);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(23);
  std::vector<double> weights = {1.0, 3.0, 0.0, 4.0};
  std::vector<int> counts(4, 0);
  const int kSamples = 80'000;
  for (int i = 0; i < kSamples; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(kSamples), 1.0 / 8, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(kSamples), 3.0 / 8, 0.02);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3] / static_cast<double>(kSamples), 4.0 / 8, 0.02);
}

TEST(RngTest, CategoricalAllZeroWeightsReturnsLastIndex) {
  Rng rng(25);
  EXPECT_EQ(rng.Categorical({0.0, 0.0, 0.0}), 2u);
}

TEST(RngTest, CategoricalNegativeWeightsTreatedAsZero) {
  Rng rng(27);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Categorical({-5.0, 1.0, -2.0}), 1u);
  }
}

}  // namespace
}  // namespace pgm
