// Runtime lock-order checker suite (util/mutex.h): in-order nesting is
// silent, rank inversion aborts with a diagnosis, condition-variable waits
// pop and re-push their rank, and unranked mutexes stay exempt. The abort
// path runs in a forked child (gtest death test) so the suite survives it.

#include <gtest/gtest.h>

#include <thread>

#include "util/mutex.h"

namespace pgm {
namespace {

#if PGM_LOCK_ORDER_CHECKS

TEST(LockOrderRuntimeTest, InOrderNestingIsSilent) {
  Mutex outer{kLockRankQueue};
  Mutex inner{kLockRankMetrics};
  MutexLock hold_outer(outer);
  MutexLock hold_inner(inner);
}

TEST(LockOrderRuntimeTest, SequentialScopesAreSilentInAnyOrder) {
  Mutex high{kLockRankTrace};
  Mutex low{kLockRankQueue};
  { MutexLock hold(high); }
  { MutexLock hold(low); }
}

TEST(LockOrderRuntimeTest, UnrankedMutexesAreExempt) {
  // An unranked mutex neither checks nor joins the held stack: acquiring
  // one under a ranked lock is silent, and a ranked acquisition after it
  // is checked against the ranked holdings only.
  Mutex ranked{kLockRankMetrics};
  Mutex unranked;
  Mutex higher{kLockRankTrace};
  MutexLock hold_ranked(ranked);
  MutexLock hold_unranked(unranked);
  MutexLock hold_higher(higher);
}

TEST(LockOrderRuntimeDeathTest, InvertedAcquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex outer{kLockRankQueue};
  Mutex inner{kLockRankMetrics};
  EXPECT_DEATH(
      {
        MutexLock hold_inner(inner);
        MutexLock hold_outer(outer);
      },
      "lock-order violation");
}

TEST(LockOrderRuntimeDeathTest, SameRankReacquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex a{kLockRankQueue};
  Mutex b{kLockRankQueue};
  EXPECT_DEATH(
      {
        MutexLock hold_a(a);
        MutexLock hold_b(b);
      },
      "lock-order violation");
}

TEST(LockOrderRuntimeTest, CondVarWaitReleasesAndReacquiresTheRank) {
  // A wait on a ranked mutex unlocks (popping the rank) and relocks
  // (re-checking it); holding a *lower* rank across the wait keeps the
  // re-acquisition legal.
  Mutex low{kLockRankQueue};
  Mutex high{kLockRankMetrics};
  CondVar cv;
  bool ready = false;
  std::thread waker([&] {
    MutexLock hold(high);
    ready = true;
    cv.notify_one();
  });
  {
    MutexLock hold_low(low);
    MutexLock hold_high(high);
    while (!ready) cv.wait(high);
  }
  waker.join();
}

TEST(LockOrderRuntimeTest, TheStateIsPerThread) {
  // Two threads each holding their own rank never see each other's stack:
  // thread B may take a low rank while thread A holds a high one.
  Mutex high{kLockRankTrace};
  Mutex low{kLockRankQueue};
  MutexLock hold_high(high);
  std::thread other([&] { MutexLock hold_low(low); });
  other.join();
}

#else  // !PGM_LOCK_ORDER_CHECKS

TEST(LockOrderRuntimeTest, ChecksCompiledOut) {
  GTEST_SKIP() << "built with PGM_LOCK_ORDER_CHECKS=0; runtime lock-order "
                  "assertions are compiled out";
}

#endif  // PGM_LOCK_ORDER_CHECKS

}  // namespace
}  // namespace pgm
