#include "datagen/markov.h"

#include <gtest/gtest.h>

#include "seq/stats.h"
#include "util/random.h"

namespace pgm {
namespace {

TEST(MarkovTest, CreateValidatesShape) {
  // Order 1 over DNA needs 4 rows of 4.
  std::vector<std::vector<double>> good(4, std::vector<double>(4, 1.0));
  EXPECT_TRUE(MarkovModel::Create(Alphabet::Dna(), 1, good).ok());
  std::vector<std::vector<double>> wrong_rows(3, std::vector<double>(4, 1.0));
  EXPECT_FALSE(MarkovModel::Create(Alphabet::Dna(), 1, wrong_rows).ok());
  std::vector<std::vector<double>> wrong_cols(4, std::vector<double>(3, 1.0));
  EXPECT_FALSE(MarkovModel::Create(Alphabet::Dna(), 1, wrong_cols).ok());
}

TEST(MarkovTest, CreateRejectsBadWeights) {
  std::vector<std::vector<double>> negative(4, std::vector<double>(4, 1.0));
  negative[2][1] = -0.5;
  EXPECT_FALSE(MarkovModel::Create(Alphabet::Dna(), 1, negative).ok());
  std::vector<std::vector<double>> zero_row(4, std::vector<double>(4, 1.0));
  zero_row[3] = {0, 0, 0, 0};
  EXPECT_FALSE(MarkovModel::Create(Alphabet::Dna(), 1, zero_row).ok());
}

TEST(MarkovTest, CreateRejectsHugeOrder) {
  std::vector<std::vector<double>> rows(1, std::vector<double>(4, 1.0));
  EXPECT_FALSE(MarkovModel::Create(Alphabet::Dna(), 9, rows).ok());
}

TEST(MarkovTest, OrderZeroIsIid) {
  // One context row; composition follows it.
  std::vector<std::vector<double>> rows = {{0.7, 0.1, 0.1, 0.1}};
  MarkovModel model = *MarkovModel::Create(Alphabet::Dna(), 0, rows);
  Rng rng(11);
  Sequence s = *model.Generate(30'000, rng);
  CompositionStats stats = ComputeComposition(s);
  EXPECT_NEAR(stats.frequencies[0], 0.7, 0.02);
}

TEST(MarkovTest, OrderOneTransitionsRespected) {
  // After 'A' always 'C'; after 'C' always 'A'; G/T unreachable from A/C.
  std::vector<std::vector<double>> rows = {
      {0, 1, 0, 0},  // A -> C
      {1, 0, 0, 0},  // C -> A
      {1, 0, 0, 0},  // G -> A
      {1, 0, 0, 0},  // T -> A
  };
  MarkovModel model = *MarkovModel::Create(Alphabet::Dna(), 1, rows);
  Rng rng(12);
  Sequence s = *model.Generate(200, rng);
  for (std::size_t i = 1; i < s.size(); ++i) {
    if (s[i - 1] == 0) {
      EXPECT_EQ(s[i], 1) << i;
    }
    if (s[i - 1] == 1) {
      EXPECT_EQ(s[i], 0) << i;
    }
  }
}

TEST(MarkovTest, GenerateDeterministicGivenSeed) {
  std::vector<std::vector<double>> rows(4, std::vector<double>(4, 1.0));
  MarkovModel model = *MarkovModel::Create(Alphabet::Dna(), 1, rows);
  Rng a(13), b(13);
  EXPECT_EQ(model.Generate(100, a)->ToString(),
            model.Generate(100, b)->ToString());
}

TEST(MarkovTest, FitRecoversStrongBias) {
  // Fit on a strict alternation: transitions A->T and T->A dominate.
  std::string text;
  for (int i = 0; i < 500; ++i) text += "AT";
  Sequence example = *Sequence::FromString(text, Alphabet::Dna());
  MarkovModel model = *MarkovModel::Fit(example, 1);
  const auto& from_a = model.TransitionRow(0);
  // 499 observed A->T transitions + smoothing 1 vs 1 each elsewhere.
  EXPECT_GT(from_a[3], 100.0);
  EXPECT_NEAR(from_a[0], 1.0, 1e-9);
  const auto& from_t = model.TransitionRow(3);
  EXPECT_GT(from_t[0], 100.0);
}

TEST(MarkovTest, FitValidatesLength) {
  Sequence tiny = *Sequence::FromString("AC", Alphabet::Dna());
  EXPECT_TRUE(MarkovModel::Fit(tiny, 1).ok());
  EXPECT_FALSE(MarkovModel::Fit(tiny, 2).ok());
}

TEST(MarkovTest, FitGenerateRoundTripPreservesComposition) {
  Rng rng(14);
  std::vector<std::vector<double>> rows = {{0.6, 0.2, 0.1, 0.1},
                                           {0.3, 0.3, 0.2, 0.2},
                                           {0.25, 0.25, 0.25, 0.25},
                                           {0.1, 0.2, 0.3, 0.4}};
  MarkovModel original = *MarkovModel::Create(Alphabet::Dna(), 1, rows);
  Sequence sample = *original.Generate(50'000, rng);
  MarkovModel fitted = *MarkovModel::Fit(sample, 1);
  Sequence regenerated = *fitted.Generate(50'000, rng);
  CompositionStats a = ComputeComposition(sample);
  CompositionStats b = ComputeComposition(regenerated);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(a.frequencies[i], b.frequencies[i], 0.02) << i;
  }
}

TEST(MarkovTest, OrderTwoContexts) {
  // 16 contexts over DNA; spot-check generation stays in-alphabet.
  std::vector<std::vector<double>> rows(16, std::vector<double>(4, 1.0));
  MarkovModel model = *MarkovModel::Create(Alphabet::Dna(), 2, rows);
  Rng rng(15);
  Sequence s = *model.Generate(1000, rng);
  EXPECT_EQ(s.size(), 1000u);
  for (Symbol sym : s.symbols()) EXPECT_LT(sym, 4);
}

}  // namespace
}  // namespace pgm
