#include "util/status.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace pgm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    const char* name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::NotFound("b"), StatusCode::kNotFound, "NotFound"},
      {Status::OutOfRange("c"), StatusCode::kOutOfRange, "OutOfRange"},
      {Status::FailedPrecondition("d"), StatusCode::kFailedPrecondition,
       "FailedPrecondition"},
      {Status::IoError("e"), StatusCode::kIoError, "IoError"},
      {Status::Corruption("f"), StatusCode::kCorruption, "Corruption"},
      {Status::Unimplemented("g"), StatusCode::kUnimplemented, "Unimplemented"},
      {Status::ResourceExhausted("h"), StatusCode::kResourceExhausted,
       "ResourceExhausted"},
      {Status::Internal("i"), StatusCode::kInternal, "Internal"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(std::string(StatusCodeToString(c.code)), c.name);
    EXPECT_NE(c.status.ToString().find(c.name), std::string::npos);
    EXPECT_NE(c.status.ToString().find(c.status.message()), std::string::npos);
  }
}

TEST(StatusTest, ToStringWithoutMessage) {
  Status s(StatusCode::kNotFound, "");
  EXPECT_EQ(s.ToString(), "NotFound");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = Status::NotFound("missing");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(7), 7);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> result = std::make_unique<int>(5);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> value = std::move(result).value();
  EXPECT_EQ(*value, 5);
}

TEST(StatusOrTest, RvalueValueOrMovesTheValue) {
  // The && overload must move-only-compile and move the held value out.
  StatusOr<std::unique_ptr<int>> result = std::make_unique<int>(9);
  std::unique_ptr<int> value = std::move(result).value_or(nullptr);
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(*value, 9);
}

TEST(StatusOrTest, RvalueValueOrMovesTheFallback) {
  StatusOr<std::unique_ptr<int>> result = Status::NotFound("missing");
  std::unique_ptr<int> value =
      std::move(result).value_or(std::make_unique<int>(3));
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(*value, 3);
}

TEST(StatusOrTest, RvalueValueOrAvoidsCopy) {
  // A vector's buffer must transfer, not duplicate.
  StatusOr<std::vector<int>> result = std::vector<int>{1, 2, 3};
  const int* data = result->data();
  std::vector<int> moved = std::move(result).value_or({});
  EXPECT_EQ(moved.data(), data);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> result = std::string("hello");
  EXPECT_EQ(result->size(), 5u);
}

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  PGM_RETURN_IF_ERROR(FailsWhenNegative(x));
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

StatusOr<int> UsesAssignOrReturn(int x) {
  PGM_ASSIGN_OR_RETURN(int value, ParsePositive(x));
  return value * 2;
}

TEST(StatusMacrosTest, AssignOrReturnUnwrapsOrPropagates) {
  StatusOr<int> ok = UsesAssignOrReturn(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  StatusOr<int> err = UsesAssignOrReturn(0);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace pgm
