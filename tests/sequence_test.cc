#include "seq/sequence.h"

#include <gtest/gtest.h>

namespace pgm {
namespace {

TEST(SequenceTest, FromStringEncodesSymbols) {
  StatusOr<Sequence> s = Sequence::FromString("ACGT", Alphabet::Dna());
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->size(), 4u);
  EXPECT_EQ((*s)[0], 0);
  EXPECT_EQ((*s)[1], 1);
  EXPECT_EQ((*s)[2], 2);
  EXPECT_EQ((*s)[3], 3);
}

TEST(SequenceTest, FromStringAcceptsLowercase) {
  StatusOr<Sequence> s = Sequence::FromString("acgt", Alphabet::Dna());
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->ToString(), "ACGT");
}

TEST(SequenceTest, FromStringReportsBadCharacterPosition) {
  StatusOr<Sequence> s = Sequence::FromString("ACNGT", Alphabet::Dna());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.status().message().find("position 2"), std::string::npos);
  EXPECT_NE(s.status().message().find("'N'"), std::string::npos);
}

TEST(SequenceTest, FromStringEmptyIsAllowed) {
  StatusOr<Sequence> s = Sequence::FromString("", Alphabet::Dna());
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->empty());
}

TEST(SequenceTest, FromStringLossyDropsUnknowns) {
  std::size_t dropped = 0;
  Sequence s = Sequence::FromStringLossy("ACNNGTN", Alphabet::Dna(), &dropped);
  EXPECT_EQ(dropped, 3u);
  EXPECT_EQ(s.ToString(), "ACGT");
}

TEST(SequenceTest, FromStringLossyWithoutCounter) {
  Sequence s = Sequence::FromStringLossy("A-C", Alphabet::Dna());
  EXPECT_EQ(s.ToString(), "AC");
}

TEST(SequenceTest, FromSymbolsValidatesRange) {
  StatusOr<Sequence> ok = Sequence::FromSymbols({0, 1, 2, 3}, Alphabet::Dna());
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->ToString(), "ACGT");
  StatusOr<Sequence> bad = Sequence::FromSymbols({0, 4}, Alphabet::Dna());
  EXPECT_FALSE(bad.ok());
}

TEST(SequenceTest, CharAt) {
  Sequence s = *Sequence::FromString("GATTACA", Alphabet::Dna());
  EXPECT_EQ(s.CharAt(0), 'G');
  EXPECT_EQ(s.CharAt(6), 'A');
}

TEST(SequenceTest, SubsequenceBasic) {
  Sequence s = *Sequence::FromString("ACGTACGT", Alphabet::Dna());
  EXPECT_EQ(s.Subsequence(2, 4).ToString(), "GTAC");
  EXPECT_EQ(s.Subsequence(0, 8).ToString(), "ACGTACGT");
}

TEST(SequenceTest, SubsequenceClampsAtEnd) {
  Sequence s = *Sequence::FromString("ACGT", Alphabet::Dna());
  EXPECT_EQ(s.Subsequence(2, 100).ToString(), "GT");
  EXPECT_TRUE(s.Subsequence(4, 1).empty());
  EXPECT_TRUE(s.Subsequence(100, 1).empty());
}

TEST(SequenceTest, Reversed) {
  Sequence s = *Sequence::FromString("ACGT", Alphabet::Dna());
  EXPECT_EQ(s.Reversed().ToString(), "TGCA");
  EXPECT_EQ(s.Reversed().Reversed().ToString(), "ACGT");
}

TEST(SequenceTest, ReversedEmpty) {
  Sequence s = *Sequence::FromString("", Alphabet::Dna());
  EXPECT_TRUE(s.Reversed().empty());
}

TEST(SequenceTest, ProteinSequencesEncode) {
  // All ten characters are standard amino acids (bovine serum albumin
  // signal-peptide prefix).
  StatusOr<Sequence> ok = Sequence::FromString("MKWVTFISLL", Alphabet::Protein());
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->ToString(), "MKWVTFISLL");
  // 'B' and 'Z' ambiguity codes are not in the 20-letter alphabet.
  EXPECT_FALSE(Sequence::FromString("MKB", Alphabet::Protein()).ok());
}

TEST(SequenceTest, CopyIsIndependent) {
  Sequence a = *Sequence::FromString("ACGT", Alphabet::Dna());
  Sequence b = a;
  EXPECT_EQ(a.ToString(), b.ToString());
  EXPECT_TRUE(a.alphabet() == b.alphabet());
}

TEST(SequenceTest, ValidateSequenceLengthBoundary) {
  // PIL positions are 32-bit, so 2^32 symbols (positions 0..2^32-1) is the
  // last admissible length; one more would wrap.
  EXPECT_TRUE(ValidateSequenceLength(0).ok());
  EXPECT_TRUE(ValidateSequenceLength(kMaxSequenceLength).ok());
  Status too_long = ValidateSequenceLength(kMaxSequenceLength + 1);
  EXPECT_EQ(too_long.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(too_long.message().find("exceeds"), std::string::npos);
  EXPECT_EQ(ValidateSequenceLength(1ULL << 33).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace pgm
