// Unit tests for the metrics registry: counter/gauge/histogram semantics,
// saturation, deterministic key-sorted JSON, MergeFrom, and concurrent
// updates (the latter is what the TSan configuration exercises).

#include "util/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "util/saturating.h"

namespace pgm {
namespace {

TEST(CounterTest, IncrementAndAdd) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("c");
  EXPECT_EQ(counter->value(), 0u);
  counter->Increment();
  counter->Add(41);
  EXPECT_EQ(counter->value(), 42u);
}

TEST(CounterTest, SaturatesInsteadOfWrapping) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("c");
  counter->Add(kSaturatedCount - 1);
  counter->Add(100);
  EXPECT_EQ(counter->value(), kSaturatedCount);
  counter->Increment();
  EXPECT_EQ(counter->value(), kSaturatedCount);
}

TEST(GaugeTest, SetAndSetMax) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("g");
  gauge->Set(10);
  EXPECT_EQ(gauge->value(), 10);
  gauge->Set(-3);
  EXPECT_EQ(gauge->value(), -3);
  gauge->SetMax(7);
  EXPECT_EQ(gauge->value(), 7);
  gauge->SetMax(2);  // lower: no effect
  EXPECT_EQ(gauge->value(), 7);
}

TEST(HistogramTest, BucketsCountAndSum) {
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("h", {10, 100, 1000});
  histogram->Observe(5);     // <= 10 -> bucket 0
  histogram->Observe(10);    // <= 10 -> bucket 0 (inclusive upper bound)
  histogram->Observe(11);    // bucket 1
  histogram->Observe(1000);  // bucket 2
  histogram->Observe(5000);  // overflow bucket
  EXPECT_EQ(histogram->bucket_count(0), 2u);
  EXPECT_EQ(histogram->bucket_count(1), 1u);
  EXPECT_EQ(histogram->bucket_count(2), 1u);
  EXPECT_EQ(histogram->bucket_count(3), 1u);
  EXPECT_EQ(histogram->count(), 5u);
  EXPECT_EQ(histogram->sum(), 5u + 10 + 11 + 1000 + 5000);
  EXPECT_EQ(histogram->bounds(), (std::vector<std::uint64_t>{10, 100, 1000}));
}

TEST(RegistryTest, GetReturnsSameHandleForSameName) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.GetCounter("x"), registry.GetCounter("x"));
  EXPECT_EQ(registry.GetGauge("x"), registry.GetGauge("x"));
  EXPECT_EQ(registry.GetHistogram("x", {1, 2}),
            registry.GetHistogram("x", {7, 8, 9}));  // bounds ignored on reuse
  EXPECT_NE(registry.GetCounter("x"), registry.GetCounter("y"));
}

TEST(RegistryTest, FindAndCounterValueOnAbsentNames) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.FindCounter("missing"), nullptr);
  EXPECT_EQ(registry.FindGauge("missing"), nullptr);
  EXPECT_EQ(registry.FindHistogram("missing"), nullptr);
  EXPECT_EQ(registry.CounterValue("missing"), 0u);
  registry.GetCounter("present")->Add(9);
  EXPECT_EQ(registry.CounterValue("present"), 9u);
  ASSERT_NE(registry.FindCounter("present"), nullptr);
  EXPECT_EQ(registry.FindCounter("present")->value(), 9u);
}

TEST(RegistryTest, MergeFromAddsCountersAndBucketsOverwritesGauges) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.GetCounter("shared")->Add(10);
  b.GetCounter("shared")->Add(5);
  b.GetCounter("only_b")->Add(3);
  a.GetGauge("g")->Set(1);
  b.GetGauge("g")->Set(99);
  a.GetHistogram("h", {10, 100})->Observe(5);
  b.GetHistogram("h", {10, 100})->Observe(50);
  b.GetHistogram("h", {10, 100})->Observe(500);

  a.MergeFrom(b);
  EXPECT_EQ(a.CounterValue("shared"), 15u);
  EXPECT_EQ(a.CounterValue("only_b"), 3u);
  EXPECT_EQ(a.FindGauge("g")->value(), 99);
  const Histogram* h = a.FindHistogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->bucket_count(0), 1u);
  EXPECT_EQ(h->bucket_count(1), 1u);
  EXPECT_EQ(h->bucket_count(2), 1u);
  EXPECT_EQ(h->count(), 3u);
  EXPECT_EQ(h->sum(), 555u);
  // The source is untouched.
  EXPECT_EQ(b.CounterValue("shared"), 5u);
}

TEST(RegistryTest, EmptyJson) {
  MetricsRegistry registry;
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(RegistryTest, JsonIsKeySortedAndDeterministic) {
  // Register in reverse order; the export must still be key-sorted, so two
  // registries fed the same values in different orders serialize the same.
  MetricsRegistry a;
  a.GetCounter("zeta")->Add(1);
  a.GetCounter("alpha")->Add(2);
  a.GetGauge("mid")->Set(-7);
  a.GetHistogram("h", {1, 2})->Observe(1);

  MetricsRegistry b;
  b.GetHistogram("h", {1, 2})->Observe(1);
  b.GetGauge("mid")->Set(-7);
  b.GetCounter("alpha")->Add(2);
  b.GetCounter("zeta")->Add(1);

  EXPECT_EQ(a.ToJson(), b.ToJson());
  const std::string json = a.ToJson();
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zeta\""));
  EXPECT_NE(json.find("\"mid\": -7"), std::string::npos);
}

TEST(RegistryTest, ConcurrentUpdatesAreExact) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("c");
  Gauge* gauge = registry.GetGauge("g");
  Histogram* histogram = registry.GetHistogram("h", {8, 64});
  constexpr int kThreads = 8;
  constexpr int kIterations = 5000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        counter->Increment();
        gauge->SetMax(t * kIterations + i);
        histogram->Observe(static_cast<std::uint64_t>(i % 100));
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(counter->value(),
            static_cast<std::uint64_t>(kThreads) * kIterations);
  EXPECT_EQ(gauge->value(), (kThreads - 1) * kIterations + kIterations - 1);
  EXPECT_EQ(histogram->count(),
            static_cast<std::uint64_t>(kThreads) * kIterations);
  std::uint64_t bucket_total = 0;
  for (std::size_t i = 0; i <= histogram->bounds().size(); ++i) {
    bucket_total += histogram->bucket_count(i);
  }
  EXPECT_EQ(bucket_total, histogram->count());
}

TEST(RegistryTest, ConcurrentRegistrationIsSafe) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        registry.GetCounter("shared." + std::to_string(i % 10))->Increment();
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  std::uint64_t total = 0;
  for (int i = 0; i < 10; ++i) {
    total += registry.CounterValue("shared." + std::to_string(i));
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * 200);
}

}  // namespace
}  // namespace pgm
