// Unit tests for the mining trace: event log semantics, the per-kind JSON
// schemas, volatile-field gating, and the event stream an observed mining
// run actually produces.

#include "core/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/miner.h"
#include "datagen/generators.h"
#include "util/random.h"

namespace pgm {
namespace {

TEST(TraceTest, AppendSizeEventsClear) {
  MiningTrace trace;
  EXPECT_EQ(trace.size(), 0u);
  TraceEvent event;
  event.kind = TraceEventKind::kLevelStart;
  event.level = 3;
  trace.Append(event);
  event.kind = TraceEventKind::kLevelEnd;
  trace.Append(event);
  EXPECT_EQ(trace.size(), 2u);
  std::vector<TraceEvent> events = trace.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, TraceEventKind::kLevelStart);
  EXPECT_EQ(events[1].kind, TraceEventKind::kLevelEnd);
  trace.Clear();
  EXPECT_EQ(trace.size(), 0u);
}

TEST(TraceTest, KindNames) {
  EXPECT_STREQ(TraceEventKindToString(TraceEventKind::kRunStart), "run_start");
  EXPECT_STREQ(TraceEventKindToString(TraceEventKind::kLevelStart),
               "level_start");
  EXPECT_STREQ(TraceEventKindToString(TraceEventKind::kLevelEnd), "level_end");
  EXPECT_STREQ(TraceEventKindToString(TraceEventKind::kGuardTrip),
               "guard_trip");
  EXPECT_STREQ(TraceEventKindToString(TraceEventKind::kEstimate), "estimate");
  EXPECT_STREQ(TraceEventKindToString(TraceEventKind::kShardTiming),
               "shard_timing");
  EXPECT_STREQ(TraceEventKindToString(TraceEventKind::kRunEnd), "run_end");
}

TEST(TraceTest, EmptyTraceJson) {
  MiningTrace trace;
  EXPECT_EQ(trace.ToJson(), "{\n  \"events\": []\n}");
}

TEST(TraceTest, PerKindJsonSchemas) {
  MiningTrace trace;
  TraceEvent start;
  start.kind = TraceEventKind::kRunStart;
  start.detail = "mppm";
  start.kernel_tier = "auto";
  trace.Append(start);
  TraceEvent level;
  level.kind = TraceEventKind::kLevelStart;
  level.level = 4;
  level.candidates = 256;
  level.lambda = 0.5;
  level.full_threshold = 10.25;
  level.relaxed_threshold = 5.125;
  trace.Append(level);
  TraceEvent end;
  end.kind = TraceEventKind::kLevelEnd;
  end.level = 4;
  end.candidates = 256;
  end.evaluated = 200;
  end.frequent = 12;
  end.retained = 30;
  end.pruned = 226;
  end.completed = true;
  trace.Append(end);

  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("{\"kind\": \"run_start\", \"algorithm\": \"mppm\", "
                      "\"kernel_tier\": \"auto\"}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"kind\": \"level_start\", \"level\": 4, "
                      "\"candidates\": 256, \"lambda\": 0.5, "
                      "\"full_threshold\": 10.25, "
                      "\"relaxed_threshold\": 5.125}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"kind\": \"level_end\", \"level\": 4, "
                      "\"candidates\": 256, \"evaluated\": 200, "
                      "\"frequent\": 12, \"retained\": 30, \"pruned\": 226, "
                      "\"completed\": true}"),
            std::string::npos);
}

TEST(TraceTest, VolatileEventsGatedByOption) {
  MiningTrace trace;
  TraceEvent timing;
  timing.kind = TraceEventKind::kShardTiming;
  timing.level = 5;
  timing.candidates = 100;
  timing.workers = 4;
  timing.kernel_tier = "bits";
  timing.seconds = 0.25;
  timing.fill_seconds = 0.125;
  timing.merge_seconds = 0.0625;
  timing.stall_seconds = 0.03125;
  trace.Append(timing);
  TraceEvent end;
  end.kind = TraceEventKind::kRunEnd;
  end.detail = "completed";
  end.patterns = 7;
  end.levels = 3;
  end.memory_bytes = 4096;
  trace.Append(end);

  // Default export: no shard timings, no memory field — byte-stable across
  // thread counts.
  const std::string stable = trace.ToJson();
  EXPECT_EQ(stable.find("shard_timing"), std::string::npos);
  EXPECT_EQ(stable.find("memory_peak_bytes"), std::string::npos);
  EXPECT_NE(stable.find("{\"kind\": \"run_end\", \"reason\": \"completed\", "
                        "\"patterns\": 7, \"levels\": 3}"),
            std::string::npos);

  TraceJsonOptions options;
  options.include_volatile = true;
  const std::string full = trace.ToJson(options);
  EXPECT_NE(full.find("{\"kind\": \"shard_timing\", \"level\": 5, "
                      "\"candidates\": 100, \"workers\": 4, "
                      "\"kernel_tier\": \"bits\", "
                      "\"seconds\": 0.25, \"fill_seconds\": 0.125, "
                      "\"merge_seconds\": 0.0625, "
                      "\"stall_seconds\": 0.03125}"),
            std::string::npos);
  EXPECT_NE(full.find("\"memory_peak_bytes\": 4096"), std::string::npos);
}

// kernel_tier is deterministic given the config (ResolveKernel never
// consults timing or thread state), so it is not a volatile field: the
// run_start carrier prints in the default export, and within a shard_timing
// event the field is unconditional — only the event as a whole stays behind
// the include_volatile gate.
TEST(TraceTest, KernelTierIsNotVolatileGated) {
  MiningTrace trace;
  TraceEvent start;
  start.kind = TraceEventKind::kRunStart;
  start.detail = "mpp";
  start.kernel_tier = "bits";
  trace.Append(start);
  TraceEvent timing;
  timing.kind = TraceEventKind::kShardTiming;
  timing.level = 2;
  timing.candidates = 8;
  timing.workers = 1;
  timing.kernel_tier = "avx2";
  trace.Append(timing);

  const std::string stable = trace.ToJson();
  EXPECT_NE(stable.find("\"kernel_tier\": \"bits\""), std::string::npos)
      << "run_start's kernel_tier must survive the byte-stable export";
  EXPECT_EQ(stable.find("shard_timing"), std::string::npos);

  TraceJsonOptions options;
  options.include_volatile = true;
  const std::string full = trace.ToJson(options);
  EXPECT_NE(full.find("\"kernel_tier\": \"avx2\""), std::string::npos)
      << "shard_timing must name the resolved kernel implementation";
}

// An actual observed mining run produces a well-formed stream: run_start
// first, run_end last, every level_start paired with a level_end, and the
// level_end aggregates consistent with each other.
TEST(TraceTest, ObservedMiningRunIsWellFormed) {
  Rng rng(7);
  Sequence s = *UniformRandomSequence(80, Alphabet::Dna(), rng);
  MetricsRegistry metrics;
  MiningTrace trace;
  MiningObserver observer;
  observer.metrics = &metrics;
  observer.trace = &trace;
  MinerConfig config;
  config.min_gap = 1;
  config.max_gap = 3;
  config.min_support_ratio = 0.01;
  config.start_length = 1;
  config.em_order = 2;
  config.observer = &observer;
  MiningResult result = *MineMppm(s, config);

  std::vector<TraceEvent> events = trace.events();
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(events.front().kind, TraceEventKind::kRunStart);
  EXPECT_EQ(events.front().detail, "mppm");
  EXPECT_EQ(events.back().kind, TraceEventKind::kRunEnd);
  EXPECT_EQ(events.back().detail, "completed");
  EXPECT_EQ(events.back().patterns, result.patterns.size());

  std::int64_t open_level = -1;
  std::size_t starts = 0;
  std::size_t ends = 0;
  bool saw_estimate = false;
  for (const TraceEvent& event : events) {
    switch (event.kind) {
      case TraceEventKind::kLevelStart:
        EXPECT_EQ(open_level, -1) << "nested level_start";
        open_level = event.level;
        ++starts;
        break;
      case TraceEventKind::kLevelEnd:
        EXPECT_EQ(open_level, event.level) << "unpaired level_end";
        open_level = -1;
        ++ends;
        EXPECT_LE(event.evaluated, event.candidates);
        EXPECT_LE(event.frequent, event.retained);
        EXPECT_EQ(event.pruned + event.retained, event.candidates);
        break;
      case TraceEventKind::kEstimate:
        saw_estimate = true;
        EXPECT_EQ(event.estimated_n, result.estimated_n);
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(open_level, -1) << "trace ended inside a level";
  EXPECT_EQ(starts, ends);
  EXPECT_EQ(starts, result.level_stats.size());
  EXPECT_TRUE(saw_estimate) << "MPPm must record its Theorem 2 estimate";
}

// The null observer records nothing and costs nothing observable.
TEST(TraceTest, NullObserverProducesIdenticalResults) {
  Rng rng(9);
  Sequence s = *UniformRandomSequence(60, Alphabet::Dna(), rng);
  MinerConfig config;
  config.min_gap = 0;
  config.max_gap = 2;
  config.min_support_ratio = 0.02;
  config.start_length = 1;
  config.em_order = 2;
  MiningResult plain = *MineMppm(s, config);

  MetricsRegistry metrics;
  MiningTrace trace;
  MiningObserver observer;
  observer.metrics = &metrics;
  observer.trace = &trace;
  MinerConfig observed_config = config;
  observed_config.observer = &observer;
  MiningResult observed = *MineMppm(s, observed_config);

  ASSERT_EQ(plain.patterns.size(), observed.patterns.size());
  for (std::size_t i = 0; i < plain.patterns.size(); ++i) {
    EXPECT_EQ(plain.patterns[i].pattern.ToShorthand(),
              observed.patterns[i].pattern.ToShorthand());
    EXPECT_EQ(plain.patterns[i].support, observed.patterns[i].support);
  }
  EXPECT_EQ(plain.total_candidates, observed.total_candidates);
  ASSERT_EQ(plain.level_stats.size(), observed.level_stats.size());
  for (std::size_t i = 0; i < plain.level_stats.size(); ++i) {
    EXPECT_EQ(plain.level_stats[i].length, observed.level_stats[i].length);
    EXPECT_EQ(plain.level_stats[i].num_candidates,
              observed.level_stats[i].num_candidates);
    EXPECT_EQ(plain.level_stats[i].num_frequent,
              observed.level_stats[i].num_frequent);
    EXPECT_EQ(plain.level_stats[i].num_retained,
              observed.level_stats[i].num_retained);
  }
}

}  // namespace
}  // namespace pgm
