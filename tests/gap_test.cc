#include "core/gap.h"

#include <gtest/gtest.h>

namespace pgm {
namespace {

TEST(GapTest, CreateValidatesBounds) {
  EXPECT_TRUE(GapRequirement::Create(0, 0).ok());
  EXPECT_TRUE(GapRequirement::Create(9, 12).ok());
  EXPECT_FALSE(GapRequirement::Create(-1, 5).ok());
  EXPECT_FALSE(GapRequirement::Create(5, 4).ok());
}

TEST(GapTest, Accessors) {
  GapRequirement gap = *GapRequirement::Create(9, 12);
  EXPECT_EQ(gap.min_gap(), 9);
  EXPECT_EQ(gap.max_gap(), 12);
}

TEST(GapTest, FlexibilityIsWindowWidth) {
  EXPECT_EQ(GapRequirement::Create(9, 12)->flexibility(), 4);
  EXPECT_EQ(GapRequirement::Create(4, 6)->flexibility(), 3);  // paper example
  EXPECT_EQ(GapRequirement::Create(5, 5)->flexibility(), 1);
}

TEST(GapTest, MinSpanMatchesPaperExample) {
  // Paper Section 4: gap [3,4], length-3 pattern spans at least 9 positions.
  GapRequirement gap = *GapRequirement::Create(3, 4);
  EXPECT_EQ(gap.MinSpan(3), 9);
}

TEST(GapTest, SpanFormulas) {
  GapRequirement gap = *GapRequirement::Create(9, 12);
  // minspan(l) = (l-1)N + l, maxspan(l) = (l-1)M + l.
  EXPECT_EQ(gap.MinSpan(1), 1);
  EXPECT_EQ(gap.MaxSpan(1), 1);
  EXPECT_EQ(gap.MinSpan(13), 12 * 9 + 13);
  EXPECT_EQ(gap.MaxSpan(13), 12 * 12 + 13);
}

TEST(GapTest, SpanMonotoneInLength) {
  GapRequirement gap = *GapRequirement::Create(2, 7);
  for (int l = 1; l < 20; ++l) {
    EXPECT_LT(gap.MinSpan(l), gap.MinSpan(l + 1));
    EXPECT_LT(gap.MaxSpan(l), gap.MaxSpan(l + 1));
    EXPECT_LE(gap.MinSpan(l), gap.MaxSpan(l));
  }
}

TEST(GapTest, L1L2MatchPaperFormulas) {
  // l1 = floor((L+M)/(M+1)), l2 = floor((L+N)/(N+1)).
  GapRequirement gap = *GapRequirement::Create(9, 12);
  EXPECT_EQ(gap.MaxGuaranteedLength(1000), (1000 + 12) / 13);  // 77
  EXPECT_EQ(gap.MaxGuaranteedLength(1000), 77);
  EXPECT_EQ(gap.MaxPossibleLength(1000), (1000 + 9) / 10);  // 100
  EXPECT_EQ(gap.MaxPossibleLength(1000), 100);
}

TEST(GapTest, L1L2DefinitionalProperty) {
  // l1 is the largest l with maxspan(l) <= L; l2 likewise for minspan.
  for (auto [n, m] : {std::pair{0, 0}, {1, 3}, {2, 2}, {4, 9}}) {
    GapRequirement gap = *GapRequirement::Create(n, m);
    for (std::int64_t L : {1, 5, 17, 100}) {
      std::int64_t l1 = gap.MaxGuaranteedLength(L);
      EXPECT_LE(gap.MaxSpan(l1), L);
      EXPECT_GT(gap.MaxSpan(l1 + 1), L);
      std::int64_t l2 = gap.MaxPossibleLength(L);
      EXPECT_LE(gap.MinSpan(l2), L);
      EXPECT_GT(gap.MinSpan(l2 + 1), L);
      EXPECT_LE(l1, l2);
    }
  }
}

TEST(GapTest, RigidGapMakesL1EqualL2) {
  GapRequirement gap = *GapRequirement::Create(5, 5);
  for (std::int64_t L : {1, 10, 100, 999}) {
    EXPECT_EQ(gap.MaxGuaranteedLength(L), gap.MaxPossibleLength(L));
  }
}

TEST(GapTest, ToStringAndEquality) {
  GapRequirement a = *GapRequirement::Create(9, 12);
  EXPECT_EQ(a.ToString(), "[9,12]");
  EXPECT_TRUE(a == *GapRequirement::Create(9, 12));
  EXPECT_FALSE(a == *GapRequirement::Create(9, 13));
}

}  // namespace
}  // namespace pgm
