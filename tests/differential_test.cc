// Differential harness: seeded-random configurations cross-check the three
// engines against each other (pattern-set equality up to the guarantee
// horizon) and the observability layer against the engines (trace/metrics
// invariants that must hold for every run, plus byte-identical exports
// across thread counts). Runs under both the ASan ("robustness") and TSan
// ("concurrency") sanitizer configurations.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "core/miner.h"
#include "core/trace.h"
#include "datagen/generators.h"
#include "util/metrics.h"
#include "util/random.h"

#include "tools/differential_params.h"

namespace pgm {
namespace {

// Reference pattern sets captured from the pre-arena engine (threads=1);
// see tools/gen_differential_goldens.
#include "differential_goldens_pr4.inc"

// (alphabet symbols, L, N, M, rho, seed)
using DiffParam = std::tuple<const char*, std::size_t, std::int64_t,
                             std::int64_t, double, std::uint64_t>;

class DifferentialSweep : public testing::TestWithParam<DiffParam> {};

std::map<std::string, std::uint64_t> ToMap(const MiningResult& result,
                                           std::size_t max_length) {
  std::map<std::string, std::uint64_t> map;
  for (const FrequentPattern& fp : result.patterns) {
    if (fp.pattern.length() > max_length) continue;
    map[fp.pattern.ToShorthand()] = fp.support;
  }
  return map;
}

struct ObservedRun {
  MiningResult result;
  std::string metrics_json;
  std::string trace_json;
  std::vector<TraceEvent> events;
  std::uint64_t generated = 0;
  std::uint64_t evaluated = 0;
  std::uint64_t retained = 0;
  std::uint64_t pruned = 0;
  std::uint64_t support_histogram_count = 0;
};

template <typename MineFn>
ObservedRun RunObserved(const Sequence& s, MinerConfig config, MineFn mine) {
  MetricsRegistry metrics;
  MiningTrace trace;
  MiningObserver observer;
  observer.metrics = &metrics;
  observer.trace = &trace;
  config.observer = &observer;
  ObservedRun run;
  run.result = *mine(s, config);
  run.metrics_json = metrics.ToJson();
  run.trace_json = trace.ToJson();  // volatile fields excluded: byte-stable
  run.events = trace.events();
  run.generated = metrics.CounterValue("mine.candidates.generated");
  run.evaluated = metrics.CounterValue("mine.candidates.evaluated");
  run.retained = metrics.CounterValue("mine.candidates.retained");
  run.pruned = metrics.CounterValue("mine.candidates.pruned");
  const Histogram* support = metrics.FindHistogram("mine.candidate.support");
  run.support_histogram_count = support == nullptr ? 0 : support->count();
  return run;
}

// The invariants every observed run must satisfy, regardless of engine,
// configuration, or thread count.
void CheckTraceInvariants(const ObservedRun& run, const char* label) {
  SCOPED_TRACE(label);
  std::uint64_t trace_generated = 0;
  std::uint64_t level_stats_total = 0;
  for (const TraceEvent& event : run.events) {
    if (event.kind != TraceEventKind::kLevelEnd) continue;
    trace_generated += event.candidates;
    EXPECT_LE(event.evaluated, event.candidates)
        << "evaluated more candidates than were generated at level "
        << event.level;
    EXPECT_LE(event.frequent, event.retained)
        << "a frequent pattern failed the relaxed threshold at level "
        << event.level;
    EXPECT_EQ(event.pruned + event.retained, event.candidates)
        << "pruned + kept != generated at level " << event.level;
  }
  for (const LevelStats& stats : run.result.level_stats) {
    level_stats_total += stats.num_candidates;
    EXPECT_GE(stats.num_candidates, stats.num_retained);
    EXPECT_GE(stats.num_retained, stats.num_frequent);
  }
  // Registry, trace, and result all agree on the candidate totals because
  // they are all views of the same per-run registry.
  EXPECT_EQ(run.generated, trace_generated);
  EXPECT_EQ(run.generated, level_stats_total);
  EXPECT_EQ(run.generated, run.result.total_candidates);
  EXPECT_EQ(run.pruned + run.retained, run.generated);
  EXPECT_LE(run.evaluated, run.generated);
  // Every evaluated candidate landed exactly one support observation.
  EXPECT_EQ(run.support_histogram_count, run.evaluated);
}

TEST_P(DifferentialSweep, EnginesAgreeAndInvariantsHold) {
  const auto [symbols, length, min_gap, max_gap, rho, seed] = GetParam();
  Alphabet alphabet = *Alphabet::Create(symbols);
  Rng rng(seed);
  Sequence s = *UniformRandomSequence(length, alphabet, rng);
  GapRequirement gap = *GapRequirement::Create(min_gap, max_gap);
  const std::size_t horizon = std::min<std::size_t>(
      6, static_cast<std::size_t>(gap.MaxGuaranteedLength(length)));

  MinerConfig base;
  base.min_gap = min_gap;
  base.max_gap = max_gap;
  base.min_support_ratio = rho;
  base.start_length = 1;
  base.em_order = 2;

  // Odd counts (3, 5) catch piece/block splits that only divide evenly by
  // powers of two; 16 oversubscribes every CI machine, so the pipeline runs
  // with more workers than cores.
  for (std::int64_t threads : {std::int64_t{1}, std::int64_t{2},
                               std::int64_t{3}, std::int64_t{5},
                               std::int64_t{8}, std::int64_t{16}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    MinerConfig config = base;
    config.threads = threads;

    MinerConfig enum_config = config;
    enum_config.max_length = static_cast<std::int64_t>(horizon);
    ObservedRun enumeration =
        RunObserved(s, enum_config, [](const Sequence& seq,
                                       const MinerConfig& c) {
          return MineEnumeration(seq, c);
        });
    MinerConfig worst = config;
    worst.user_n = -1;
    ObservedRun mpp = RunObserved(
        s, worst,
        [](const Sequence& seq, const MinerConfig& c) {
          return MineMpp(seq, c);
        });
    ObservedRun mppm = RunObserved(
        s, config,
        [](const Sequence& seq, const MinerConfig& c) {
          return MineMppm(seq, c);
        });

    // Differential check: all three engines report the same frequent
    // pattern set (with identical supports) below the guarantee horizon.
    const auto reference = ToMap(enumeration.result, horizon);
    EXPECT_EQ(ToMap(mpp.result, horizon), reference)
        << "MPP disagrees with enumeration";
    EXPECT_EQ(ToMap(mppm.result, horizon), reference)
        << "MPPm disagrees with enumeration";

    CheckTraceInvariants(enumeration, "enumeration");
    CheckTraceInvariants(mpp, "mpp");
    CheckTraceInvariants(mppm, "mppm");
  }
}

// The observability exports are byte-identical across thread counts: the
// whole recording path runs in the engines' serial sections.
TEST_P(DifferentialSweep, ExportsAreByteIdenticalAcrossThreadCounts) {
  const auto [symbols, length, min_gap, max_gap, rho, seed] = GetParam();
  Alphabet alphabet = *Alphabet::Create(symbols);
  Rng rng(seed);
  Sequence s = *UniformRandomSequence(length, alphabet, rng);

  MinerConfig base;
  base.min_gap = min_gap;
  base.max_gap = max_gap;
  base.min_support_ratio = rho;
  base.start_length = 1;
  base.em_order = 2;

  MinerConfig serial = base;
  serial.threads = 1;
  ObservedRun reference = RunObserved(
      s, serial,
      [](const Sequence& seq, const MinerConfig& c) {
        return MineMppm(seq, c);
      });
  for (std::int64_t threads : {std::int64_t{2}, std::int64_t{3},
                               std::int64_t{5}, std::int64_t{8},
                               std::int64_t{16}}) {
    MinerConfig config = base;
    config.threads = threads;
    ObservedRun run = RunObserved(
        s, config,
        [](const Sequence& seq, const MinerConfig& c) {
          return MineMppm(seq, c);
        });
    EXPECT_EQ(run.metrics_json, reference.metrics_json)
        << "metrics JSON depends on thread count (threads=" << threads << ")";
    EXPECT_EQ(run.trace_json, reference.trace_json)
        << "trace JSON depends on thread count (threads=" << threads << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeededConfigs, DifferentialSweep,
    testing::Values(
        DiffParam{"ACGT", 40, 1, 2, 0.02, 3001},
        DiffParam{"ACGT", 60, 0, 1, 0.05, 3002},
        DiffParam{"ACGT", 60, 2, 4, 0.01, 3003},
        DiffParam{"ACGT", 80, 1, 3, 0.005, 3004},
        DiffParam{"AB", 50, 1, 2, 0.05, 3005},
        DiffParam{"AB", 70, 0, 2, 0.1, 3006},
        DiffParam{"ABC", 55, 2, 3, 0.02, 3007},
        DiffParam{"ACGT", 45, 3, 3, 0.01, 3008},    // rigid gap, W = 1
        DiffParam{"ACGT", 64, 0, 0, 0.02, 3009},    // adjacent characters
        DiffParam{"ACGT", 33, 5, 8, 0.02, 3010},    // wide gap, short seq
        DiffParam{"ACGT", 100, 2, 3, 0.008, 3011},
        DiffParam{"AB", 36, 4, 6, 0.03, 3012},
        DiffParam{"ABCDE", 48, 1, 2, 0.01, 3013},   // 5-letter alphabet
        DiffParam{"ACGT", 25, 0, 6, 0.05, 3014},    // gap wider than N
        DiffParam{"ACGT", 90, 1, 1, 0.015, 3015},   // rigid non-zero gap
        DiffParam{"ACGT", 48, 1, 2, 0.04, 3016},
        DiffParam{"ACGT", 72, 0, 3, 0.01, 3017},
        DiffParam{"AB", 64, 2, 2, 0.08, 3018},
        DiffParam{"ABC", 80, 0, 1, 0.03, 3019},
        DiffParam{"ACGT", 56, 2, 5, 0.015, 3020},
        DiffParam{"ACGT", 30, 1, 4, 0.06, 3021},
        DiffParam{"AB", 90, 1, 3, 0.04, 3022},
        DiffParam{"ABCDE", 60, 0, 2, 0.008, 3023},
        DiffParam{"ACGT", 84, 3, 4, 0.006, 3024},
        DiffParam{"ACGT", 50, 0, 5, 0.03, 3025},
        DiffParam{"ABC", 44, 1, 1, 0.05, 3026},
        DiffParam{"ACGT", 66, 4, 5, 0.01, 3027}));

// The randomized-oracle sweep (satellite of the arena refactor): 50 seeded
// configurations drawn in tools/differential_params.h, each mined by all
// three engines at several thread counts and compared both against the
// brute-force enumeration oracle and against pattern sets captured from the
// *pre-arena* engine (tests/differential_goldens_pr4.inc). The fixture
// comparison is what makes this a refactor gate: agreement among today's
// engines is necessary but would not notice all of them drifting together.
TEST(RandomizedOracleSweep, EnginesMatchOracleAndPreArenaGoldens) {
  const std::vector<difftest::OracleConfig> configs =
      difftest::OracleConfigs();
  ASSERT_EQ(configs.size(), difftest::kNumOracleConfigs);
  ASSERT_EQ(std::size(kDifferentialGoldensPr4), difftest::kNumOracleConfigs);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const difftest::OracleConfig& oracle_config = configs[i];
    SCOPED_TRACE("config " + std::to_string(i) + ": " +
                 difftest::DescribeConfig(oracle_config));
    Alphabet alphabet = *Alphabet::Create(oracle_config.alphabet);
    Rng rng(oracle_config.data_seed);
    Sequence s =
        *UniformRandomSequence(oracle_config.length, alphabet, rng);
    const std::size_t horizon = difftest::OracleHorizon(oracle_config);
    const std::string golden = kDifferentialGoldensPr4[i];
    for (std::int64_t threads : {std::int64_t{1}, std::int64_t{2},
                                 std::int64_t{3}, std::int64_t{5},
                                 std::int64_t{8}, std::int64_t{16}}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      MinerConfig config = difftest::ToMinerConfig(oracle_config);
      config.threads = threads;

      StatusOr<MiningResult> mpp = MineMpp(s, config);
      ASSERT_TRUE(mpp.ok()) << mpp.status().message();
      EXPECT_EQ(difftest::CanonicalPatterns(*mpp, horizon), golden)
          << "MPP drifted from the pre-arena fixture";

      StatusOr<MiningResult> mppm = MineMppm(s, config);
      ASSERT_TRUE(mppm.ok()) << mppm.status().message();
      EXPECT_EQ(difftest::CanonicalPatterns(*mppm, horizon), golden)
          << "MPPm drifted from the pre-arena fixture";

      MinerConfig enum_config = config;
      enum_config.max_length = static_cast<std::int64_t>(horizon);
      StatusOr<MiningResult> enumeration = MineEnumeration(s, enum_config);
      ASSERT_TRUE(enumeration.ok()) << enumeration.status().message();
      EXPECT_EQ(difftest::CanonicalPatterns(*enumeration, horizon), golden)
          << "enumeration oracle disagrees with the fixture";
    }
  }
}

}  // namespace
}  // namespace pgm
