// Tests for the resource-governance layer: MiningGuard/CancelToken units
// and the partial-but-sound failure contract of all four miners. The
// contract under test (see DESIGN.md "Failure handling & resource
// limits"): budget exhaustion never fails the call — it returns ok() with
// the correct TerminationReason, every returned pattern genuinely
// frequent, and guaranteed_complete_up_to tightened to the truncation
// horizon.

#include "core/guard.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/miner.h"
#include "core/trace.h"
#include "seq/sequence.h"
#include "util/metrics.h"

namespace pgm {
namespace {

using Miner = StatusOr<MiningResult> (*)(const Sequence&, const MinerConfig&);

struct NamedMiner {
  const char* name;
  Miner mine;
};

const NamedMiner kMiners[] = {
    {"mpp", MineMpp},
    {"mppm", MineMppm},
    {"enum", MineEnumeration},
    {"adaptive", MineAdaptive},
};

Sequence TestSequence() {
  std::string text;
  for (int i = 0; i < 16; ++i) text += "AACCGGTTACGTAGCT";
  return *Sequence::FromString(text, Alphabet::Dna());
}

MinerConfig TestConfig() {
  MinerConfig config;
  config.min_gap = 0;
  config.max_gap = 2;
  config.min_support_ratio = 0.02;
  config.start_length = 1;
  config.max_length = 6;  // keeps enumeration tractable
  return config;
}

std::vector<std::pair<std::string, std::uint64_t>> PatternSupports(
    const MiningResult& result) {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (const FrequentPattern& fp : result.patterns) {
    out.emplace_back(fp.pattern.ToShorthand(), fp.support);
  }
  return out;
}

// --- MiningGuard units ---

TEST(CancelTokenTest, StartsClearAndLatches) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.RequestCancel();
  EXPECT_TRUE(token.cancelled());
}

TEST(MiningGuardTest, UnlimitedGuardNeverStops) {
  MiningGuard guard(ResourceLimits{});
  EXPECT_TRUE(guard.CheckNow());
  EXPECT_TRUE(guard.ChargeMemory(1ull << 40));
  EXPECT_TRUE(guard.ChargeLevelCandidates(1ull << 40));
  for (int i = 0; i < 200'000; ++i) EXPECT_TRUE(guard.Tick());
  EXPECT_FALSE(guard.stopped());
  EXPECT_EQ(guard.reason(), TerminationReason::kCompleted);
}

TEST(MiningGuardTest, ZeroDeadlineTripsOnFirstCheck) {
  ResourceLimits limits;
  limits.deadline_ms = 0;
  MiningGuard guard(limits);
  EXPECT_FALSE(guard.CheckNow());
  EXPECT_EQ(guard.reason(), TerminationReason::kDeadline);
  // The reason is sticky: later violations do not overwrite it.
  EXPECT_FALSE(guard.ChargeMemory(1ull << 40));
  EXPECT_EQ(guard.reason(), TerminationReason::kDeadline);
}

TEST(MiningGuardTest, CancelledTokenWins) {
  CancelToken token;
  token.RequestCancel();
  MiningGuard guard(ResourceLimits{}, &token);
  EXPECT_FALSE(guard.CheckNow());
  EXPECT_EQ(guard.reason(), TerminationReason::kCancelled);
}

TEST(MiningGuardTest, MemoryBudgetChargesAndReleases) {
  ResourceLimits limits;
  limits.pil_memory_budget_bytes = 100;
  MiningGuard guard(limits);
  EXPECT_TRUE(guard.ChargeMemory(60));
  guard.ReleaseMemory(60);
  EXPECT_TRUE(guard.ChargeMemory(90));
  EXPECT_EQ(guard.memory_in_use_bytes(), 90u);
  EXPECT_FALSE(guard.ChargeMemory(20));
  EXPECT_EQ(guard.reason(), TerminationReason::kMemoryBudget);
  EXPECT_EQ(guard.memory_peak_bytes(), 110u);
}

TEST(MiningGuardTest, CandidateCapsPerLevelAndTotal) {
  ResourceLimits limits;
  limits.max_level_candidates = 10;
  MiningGuard per_level(limits);
  EXPECT_TRUE(per_level.ChargeLevelCandidates(10));
  EXPECT_FALSE(per_level.ChargeLevelCandidates(11));
  EXPECT_EQ(per_level.reason(), TerminationReason::kCandidateCap);

  ResourceLimits total_limits;
  total_limits.max_total_candidates = 15;
  MiningGuard total(total_limits);
  EXPECT_TRUE(total.ChargeLevelCandidates(10));
  EXPECT_FALSE(total.ChargeLevelCandidates(10));
  EXPECT_EQ(total.reason(), TerminationReason::kCandidateCap);
}

TEST(MiningGuardTest, TickPollsTheClockEveryPeriod) {
  ResourceLimits limits;
  limits.deadline_ms = 0;
  MiningGuard guard(limits);
  // The fast path never reads the clock, so the first kTickPeriod - 1
  // ticks pass; the period-th performs the full check and trips.
  for (std::uint64_t i = 0; i + 1 < MiningGuard::kTickPeriod; ++i) {
    ASSERT_TRUE(guard.Tick());
  }
  EXPECT_FALSE(guard.Tick());
  EXPECT_EQ(guard.reason(), TerminationReason::kDeadline);
}

TEST(ResourceLimitsTest, AnyDetectsActiveLimits) {
  EXPECT_FALSE(ResourceLimits{}.any());
  ResourceLimits deadline;
  deadline.deadline_ms = 0;
  EXPECT_TRUE(deadline.any());
  ResourceLimits memory;
  memory.pil_memory_budget_bytes = 1;
  EXPECT_TRUE(memory.any());
}

// --- Failure contract across all four miners ---

TEST(MinerGovernanceTest, PreCancelledTokenReturnsOkAndEmpty) {
  const Sequence sequence = TestSequence();
  for (const NamedMiner& miner : kMiners) {
    CancelToken token;
    token.RequestCancel();
    MinerConfig config = TestConfig();
    config.cancel = &token;
    StatusOr<MiningResult> result = miner.mine(sequence, config);
    ASSERT_TRUE(result.ok()) << miner.name;
    EXPECT_EQ(result->termination, TerminationReason::kCancelled)
        << miner.name;
    EXPECT_TRUE(result->patterns.empty()) << miner.name;
    EXPECT_EQ(result->guaranteed_complete_up_to, 0) << miner.name;
  }
}

TEST(MinerGovernanceTest, ZeroDeadlineReturnsOkPartial) {
  const Sequence sequence = TestSequence();
  for (const NamedMiner& miner : kMiners) {
    MinerConfig config = TestConfig();
    config.limits.deadline_ms = 0;
    StatusOr<MiningResult> result = miner.mine(sequence, config);
    ASSERT_TRUE(result.ok()) << miner.name;
    EXPECT_EQ(result->termination, TerminationReason::kDeadline)
        << miner.name;
    EXPECT_TRUE(result->patterns.empty()) << miner.name;
    EXPECT_EQ(result->guaranteed_complete_up_to, 0) << miner.name;
  }
}

TEST(MinerGovernanceTest, OneBytePilBudgetReturnsOkPartial) {
  const Sequence sequence = TestSequence();
  for (const NamedMiner& miner : kMiners) {
    MinerConfig config = TestConfig();
    config.limits.pil_memory_budget_bytes = 1;
    StatusOr<MiningResult> result = miner.mine(sequence, config);
    ASSERT_TRUE(result.ok()) << miner.name;
    EXPECT_EQ(result->termination, TerminationReason::kMemoryBudget)
        << miner.name;
    EXPECT_EQ(result->guaranteed_complete_up_to, 0) << miner.name;
    EXPECT_GT(result->pil_memory_peak_bytes, 1u) << miner.name;
  }
}

TEST(MinerGovernanceTest, CandidateCapReturnsOkPartial) {
  const Sequence sequence = TestSequence();
  for (const NamedMiner& miner : kMiners) {
    MinerConfig config = TestConfig();
    // Level 1 has |Σ| = 4 candidates; level 2 joins exceed 2.
    config.limits.max_level_candidates = 2;
    StatusOr<MiningResult> result = miner.mine(sequence, config);
    ASSERT_TRUE(result.ok()) << miner.name;
    EXPECT_EQ(result->termination, TerminationReason::kCandidateCap)
        << miner.name;
    EXPECT_EQ(result->guaranteed_complete_up_to, 0) << miner.name;
  }
}

TEST(MinerGovernanceTest, TotalCandidateCapStopsAtLaterLevel) {
  const Sequence sequence = TestSequence();
  MinerConfig config = TestConfig();
  // Level 1 fits (4 candidates), the cumulative total trips afterwards.
  config.limits.max_total_candidates = 5;
  StatusOr<MiningResult> result = MineMpp(sequence, config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->termination, TerminationReason::kCandidateCap);
  EXPECT_EQ(result->guaranteed_complete_up_to, 1);
  // Level 1 completed, so its frequent patterns are all present.
  EXPECT_GT(result->patterns.size(), 0u);
  for (const FrequentPattern& fp : result->patterns) {
    EXPECT_EQ(fp.pattern.length(), 1u);
  }
}

TEST(MinerGovernanceTest, GenerousLimitsAreBitIdenticalToUngoverned) {
  const Sequence sequence = TestSequence();
  for (const NamedMiner& miner : kMiners) {
    CancelToken token;  // live but never cancelled
    MinerConfig governed = TestConfig();
    governed.limits.deadline_ms = 600'000;
    governed.limits.pil_memory_budget_bytes = 1ull << 32;
    governed.limits.max_level_candidates = 1ull << 40;
    governed.limits.max_total_candidates = 1ull << 40;
    governed.cancel = &token;

    StatusOr<MiningResult> with_limits = miner.mine(sequence, governed);
    StatusOr<MiningResult> without_limits =
        miner.mine(sequence, TestConfig());
    ASSERT_TRUE(with_limits.ok()) << miner.name;
    ASSERT_TRUE(without_limits.ok()) << miner.name;
    EXPECT_EQ(with_limits->termination, TerminationReason::kCompleted)
        << miner.name;
    EXPECT_EQ(PatternSupports(*with_limits), PatternSupports(*without_limits))
        << miner.name;
    EXPECT_EQ(with_limits->guaranteed_complete_up_to,
              without_limits->guaranteed_complete_up_to)
        << miner.name;
    EXPECT_EQ(with_limits->total_candidates, without_limits->total_candidates)
        << miner.name;
  }
}

TEST(MinerGovernanceTest, PartialResultsAreSound) {
  // Whatever a truncated run returns must be a subset of the full run,
  // with identical supports — truncation may drop patterns, never invent
  // or corrupt them.
  const Sequence sequence = TestSequence();
  StatusOr<MiningResult> full = MineMpp(sequence, TestConfig());
  ASSERT_TRUE(full.ok());
  const auto full_supports = PatternSupports(*full);

  for (std::uint64_t budget : {1ull, 512ull, 4096ull, 32768ull}) {
    MinerConfig config = TestConfig();
    config.limits.pil_memory_budget_bytes = budget;
    StatusOr<MiningResult> partial = MineMpp(sequence, config);
    ASSERT_TRUE(partial.ok()) << budget;
    for (const auto& entry : PatternSupports(*partial)) {
      EXPECT_NE(std::find(full_supports.begin(), full_supports.end(), entry),
                full_supports.end())
          << "budget " << budget << ": spurious pattern " << entry.first;
    }
    // Everything within the guaranteed horizon is present.
    std::size_t full_within = 0, partial_within = 0;
    for (const FrequentPattern& fp : full->patterns) {
      if (static_cast<std::int64_t>(fp.pattern.length()) <=
          partial->guaranteed_complete_up_to) {
        ++full_within;
      }
    }
    for (const FrequentPattern& fp : partial->patterns) {
      if (static_cast<std::int64_t>(fp.pattern.length()) <=
          partial->guaranteed_complete_up_to) {
        ++partial_within;
      }
    }
    EXPECT_EQ(full_within, partial_within) << "budget " << budget;
  }
}

TEST(MinerGovernanceTest, TruncatedRunsStillReportTheLevelTheyWereCutIn) {
  // Regression: total_candidates used to be summed from LevelStats, and a
  // budget trip returned before the stats for the level in flight were
  // pushed — a truncated run could report zero candidates despite having
  // generated a whole level. Both numbers are now views of the same per-run
  // metrics registry, recorded at LevelStart (before any evaluation), so
  // the cut level is counted and the two stay consistent by construction.
  const Sequence sequence = TestSequence();
  for (const NamedMiner& miner : kMiners) {
    MinerConfig config = TestConfig();
    config.limits.pil_memory_budget_bytes = 1;  // trips inside level 1
    StatusOr<MiningResult> result = miner.mine(sequence, config);
    ASSERT_TRUE(result.ok()) << miner.name;
    EXPECT_EQ(result->termination, TerminationReason::kMemoryBudget)
        << miner.name;
    EXPECT_FALSE(result->level_stats.empty()) << miner.name;
    EXPECT_GT(result->total_candidates, 0u) << miner.name;
    std::uint64_t from_levels = 0;
    for (const LevelStats& stats : result->level_stats) {
      from_levels += stats.num_candidates;
    }
    EXPECT_EQ(result->total_candidates, from_levels) << miner.name;
  }
}

TEST(MinerGovernanceTest, TrippedRunsRecordTheTripInTheObserver) {
  const Sequence sequence = TestSequence();
  for (const NamedMiner& miner : kMiners) {
    MetricsRegistry metrics;
    MiningTrace trace;
    MiningObserver observer;
    observer.metrics = &metrics;
    observer.trace = &trace;
    MinerConfig config = TestConfig();
    config.limits.pil_memory_budget_bytes = 1;
    config.observer = &observer;
    ASSERT_TRUE(miner.mine(sequence, config).ok()) << miner.name;
    EXPECT_GE(metrics.CounterValue("mine.guard.trips"), 1u) << miner.name;
    EXPECT_GE(metrics.CounterValue("mine.guard.trips.memory-budget"), 1u)
        << miner.name;
    bool saw_trip = false;
    bool saw_incomplete_level = false;
    for (const TraceEvent& event : trace.events()) {
      if (event.kind == TraceEventKind::kGuardTrip) {
        saw_trip = true;
        EXPECT_EQ(event.detail, "memory-budget") << miner.name;
      }
      if (event.kind == TraceEventKind::kLevelEnd && !event.completed) {
        saw_incomplete_level = true;
      }
    }
    EXPECT_TRUE(saw_trip) << miner.name;
    EXPECT_TRUE(saw_incomplete_level) << miner.name;
  }
}

TEST(MinerGovernanceTest, AdaptiveDeadlineSpansAllIterations) {
  // With a generous deadline the adaptive loop completes normally and
  // reports kCompleted; the per-iteration deadline handoff must not turn a
  // finished run into a partial one.
  const Sequence sequence = TestSequence();
  MinerConfig config = TestConfig();
  config.initial_n = 1;
  config.limits.deadline_ms = 600'000;
  StatusOr<MiningResult> result = MineAdaptive(sequence, config);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->complete());
  EXPECT_GE(result->adaptive_iterations, 1);
}

}  // namespace
}  // namespace pgm
