#include "util/csv_reader.h"

#include <gtest/gtest.h>

#include "util/csv_writer.h"

namespace pgm {
namespace {

using Rows = std::vector<std::vector<std::string>>;

TEST(CsvReaderTest, SimpleRows) {
  Rows rows = *ParseCsv("a,b\n1,2\n3,4\n");
  EXPECT_EQ(rows, (Rows{{"a", "b"}, {"1", "2"}, {"3", "4"}}));
}

TEST(CsvReaderTest, MissingTrailingNewline) {
  Rows rows = *ParseCsv("a,b\n1,2");
  EXPECT_EQ(rows, (Rows{{"a", "b"}, {"1", "2"}}));
}

TEST(CsvReaderTest, EmptyInput) {
  EXPECT_TRUE(ParseCsv("")->empty());
}

TEST(CsvReaderTest, EmptyFields) {
  Rows rows = *ParseCsv(",\na,,c\n");
  EXPECT_EQ(rows, (Rows{{"", ""}, {"a", "", "c"}}));
}

TEST(CsvReaderTest, QuotedFields) {
  Rows rows = *ParseCsv("\"a,b\",\"say \"\"hi\"\"\"\n");
  EXPECT_EQ(rows, (Rows{{"a,b", "say \"hi\""}}));
}

TEST(CsvReaderTest, QuotedNewlines) {
  Rows rows = *ParseCsv("\"line1\nline2\",x\n");
  EXPECT_EQ(rows, (Rows{{"line1\nline2", "x"}}));
}

TEST(CsvReaderTest, CrlfLineEndings) {
  Rows rows = *ParseCsv("a,b\r\n1,2\r\n");
  EXPECT_EQ(rows, (Rows{{"a", "b"}, {"1", "2"}}));
}

TEST(CsvReaderTest, CrlfAfterQuotedField) {
  // The CR of a CRLF line ending lands right after the closing quote; it
  // must be swallowed, not treated as "characters after closing quote" or
  // appended to the field.
  Rows rows = *ParseCsv("\"a,b\",\"c\"\r\nplain,2\r\n");
  EXPECT_EQ(rows, (Rows{{"a,b", "c"}, {"plain", "2"}}));
}

TEST(CsvReaderTest, TrailingBlankLinesIgnored) {
  Rows rows = *ParseCsv("a,b\n1,2\n\n\n");
  EXPECT_EQ(rows, (Rows{{"a", "b"}, {"1", "2"}}));
}

TEST(CsvReaderTest, TrailingBlankCrlfLinesIgnored) {
  Rows rows = *ParseCsv("a,b\r\n1,2\r\n\r\n\r\n");
  EXPECT_EQ(rows, (Rows{{"a", "b"}, {"1", "2"}}));
}

TEST(CsvReaderTest, InteriorBlankLinesIgnored) {
  Rows rows = *ParseCsv("a,b\n\n1,2\n");
  EXPECT_EQ(rows, (Rows{{"a", "b"}, {"1", "2"}}));
}

TEST(CsvReaderTest, QuotedEmptyFieldIsNotABlankLine) {
  // A lone "" on its own line is a real one-field record, unlike a truly
  // blank line.
  Rows rows = *ParseCsv("\"\"\n");
  EXPECT_EQ(rows, (Rows{{""}}));
}

TEST(CsvReaderTest, RejectsUnterminatedQuote) {
  EXPECT_FALSE(ParseCsv("\"abc\n").ok());
}

TEST(CsvReaderTest, RejectsQuoteInsideUnquotedField) {
  EXPECT_FALSE(ParseCsv("ab\"c,d\n").ok());
}

TEST(CsvReaderTest, RejectsTextAfterClosingQuote) {
  EXPECT_FALSE(ParseCsv("\"ab\"c,d\n").ok());
}

TEST(CsvReaderTest, RoundTripsWriterOutput) {
  CsvWriter writer({"name", "value", "notes"});
  ASSERT_TRUE(writer.AddRow({"plain", "1", "simple"}).ok());
  ASSERT_TRUE(writer.AddRow({"comma,field", "2", "quote \"this\""}).ok());
  ASSERT_TRUE(writer.AddRow({"multi\nline", "3", ""}).ok());
  Rows rows = *ParseCsv(writer.ToString());
  EXPECT_EQ(rows,
            (Rows{{"name", "value", "notes"},
                  {"plain", "1", "simple"},
                  {"comma,field", "2", "quote \"this\""},
                  {"multi\nline", "3", ""}}));
}

TEST(CsvReaderTest, ReadMissingFileFails) {
  EXPECT_FALSE(ReadCsvFile("/nonexistent-dir-xyz/x.csv").ok());
}

TEST(CsvReaderTest, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/csv_reader_test.csv";
  CsvWriter writer({"k"});
  ASSERT_TRUE(writer.AddRow({"v1"}).ok());
  ASSERT_TRUE(writer.WriteToFile(path).ok());
  Rows rows = *ReadCsvFile(path);
  std::remove(path.c_str());
  EXPECT_EQ(rows, (Rows{{"k"}, {"v1"}}));
}

}  // namespace
}  // namespace pgm
