// Corpus differential suite: the corpus executor's aggregate must be
// byte-identical to a serial one-fragment-at-a-time reference loop — same
// pattern union, same per-fragment counts, same metrics and trace exports —
// across corpus_threads {1, 2, 8} x join-kernel tiers {scalar, bits}. The
// hand-rolled reference below re-implements the Section 7 aggregation
// (per-fragment mining, best per-fragment support, ties to the earliest
// fragment) independently of src/corpus, so an executor bug cannot hide by
// agreeing with itself. Mirrors tests/kernel_diff_test.cc at the corpus
// level; carries the corpus, robustness (ASan), concurrency (TSan), and
// service labels.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "core/kernel.h"
#include "core/miner.h"
#include "core/trace.h"
#include "corpus/executor.h"
#include "corpus/plan.h"
#include "datagen/generators.h"
#include "seq/fasta.h"
#include "util/metrics.h"
#include "util/random.h"

#include "tools/differential_params.h"

namespace pgm {
namespace {

// (alphabet, records, record length, fragment length, keep_tail, N, M, rho,
// seed) — each record cuts into several fragments, so the sweep exercises
// multi-record plans, ragged tails, and the ordinal merge order.
using CorpusDiffParam =
    std::tuple<const char*, std::size_t, std::size_t, std::size_t, bool,
               std::int64_t, std::int64_t, double, std::uint64_t>;

class CorpusDifferentialSweep : public testing::TestWithParam<CorpusDiffParam> {
};

// Same masking contract as the kernel tier suite: the configured tier is
// the one export field that legitimately differs across tiers.
std::string MaskKernelTier(std::string json) {
  const std::string key = "\"kernel_tier\": \"";
  std::size_t pos = 0;
  while ((pos = json.find(key, pos)) != std::string::npos) {
    pos += key.size();
    const std::size_t end = json.find('"', pos);
    json.replace(pos, end - pos, "*");
    pos += 1;
  }
  return json;
}

CorpusPlan BuildPlan(const CorpusDiffParam& param) {
  // Reads only the corpus-shape fields of the tuple; the mining fields
  // belong to BaseConfig.
  const char* symbols = std::get<0>(param);
  const std::size_t records = std::get<1>(param);
  const std::size_t record_length = std::get<2>(param);
  const std::size_t fragment_length = std::get<3>(param);
  const bool keep_tail = std::get<4>(param);
  const std::uint64_t seed = std::get<8>(param);
  Alphabet alphabet = *Alphabet::Create(symbols);
  Rng rng(seed);
  std::vector<FastaRecord> fasta;
  for (std::size_t r = 0; r < records; ++r) {
    Sequence sequence = *UniformRandomSequence(record_length, alphabet, rng);
    fasta.push_back(FastaRecord{"rec" + std::to_string(r), "",
                                sequence.ToString()});
  }
  CorpusPlanOptions options;
  options.fragment.fragment_length = fragment_length;
  options.fragment.keep_tail = keep_tail;
  return *CorpusPlan::FromRecords(fasta, alphabet, options);
}

MinerConfig BaseConfig(const CorpusDiffParam& param) {
  // Reads only the mining fields of the tuple; the corpus-shape fields
  // belong to BuildPlan.
  MinerConfig config;
  config.min_gap = std::get<5>(param);
  config.max_gap = std::get<6>(param);
  config.min_support_ratio = std::get<7>(param);
  config.start_length = 1;
  config.em_order = 2;
  return config;
}

// The serial reference: mine every fragment one at a time with the scalar
// kernel and fold the union by hand. Deliberately independent of
// MineCorpus so the two aggregations can disagree.
struct ReferenceAggregate {
  std::string canonical_patterns;
  std::vector<std::uint64_t> fragment_counts;
};

ReferenceAggregate SerialReference(const CorpusPlan& plan,
                                   const MinerConfig& base) {
  struct Entry {
    FrequentPattern pattern;
    std::uint64_t fragments = 0;
  };
  std::map<std::vector<Symbol>, Entry> fold;
  MinerConfig config = base;
  config.kernel_tier = KernelTier::kScalar;
  config.threads = 1;
  for (const CorpusFragment& fragment : plan.fragments()) {
    StatusOr<MiningResult> mined = MineMppm(fragment.sequence, config);
    EXPECT_TRUE(mined.ok()) << mined.status().message();
    if (!mined.ok()) continue;
    for (const FrequentPattern& fp : mined->patterns) {
      Entry& entry = fold[fp.pattern.symbols()];
      if (entry.fragments == 0 || fp.support > entry.pattern.support) {
        entry.pattern = fp;
      }
      ++entry.fragments;
    }
  }
  std::vector<const Entry*> entries;
  entries.reserve(fold.size());
  for (const auto& [symbols, entry] : fold) entries.push_back(&entry);
  std::sort(entries.begin(), entries.end(), [](const Entry* a, const Entry* b) {
    if (a->pattern.pattern.length() != b->pattern.pattern.length()) {
      return a->pattern.pattern.length() < b->pattern.pattern.length();
    }
    return a->pattern.pattern.symbols() < b->pattern.pattern.symbols();
  });
  ReferenceAggregate reference;
  MiningResult flat;
  for (const Entry* entry : entries) {
    flat.patterns.push_back(entry->pattern);
    reference.fragment_counts.push_back(entry->fragments);
  }
  reference.canonical_patterns =
      difftest::CanonicalPatterns(flat, /*max_length=*/1000);
  return reference;
}

struct CorpusRun {
  std::string patterns;
  std::vector<std::uint64_t> fragment_counts;
  std::string metrics_json;
  std::string trace_json;
  CorpusResult result;
};

CorpusRun RunCorpus(const CorpusPlan& plan, MinerConfig config,
                    KernelTier tier, std::int64_t corpus_threads) {
  config.kernel_tier = tier;
  MetricsRegistry metrics;
  MiningTrace trace;
  MiningObserver observer;
  observer.metrics = &metrics;
  observer.trace = &trace;
  CorpusOptions options;
  options.miner = config;
  options.corpus_threads = corpus_threads;
  options.observer = &observer;
  StatusOr<CorpusResult> result = MineCorpus(plan, options);
  EXPECT_TRUE(result.ok()) << result.status().message();
  CorpusRun run;
  if (result.ok()) {
    run.result = *std::move(result);
    run.patterns =
        difftest::CanonicalPatterns(run.result.ToMiningResult(), 1000);
    run.fragment_counts = run.result.pattern_fragment_counts;
  }
  run.metrics_json = metrics.ToJson();
  run.trace_json = MaskKernelTier(trace.ToJson());
  // Structural trace invariant at every thread count: exactly one
  // fragment_start and one fragment_end per planned fragment, emitted in
  // ordinal order, with the fragment's own run events strictly between its
  // brackets.
  const std::vector<TraceEvent> events = trace.events();
  std::int64_t open_fragment = -1;
  std::size_t starts = 0;
  std::size_t ends = 0;
  for (const TraceEvent& event : events) {
    if (event.kind == TraceEventKind::kFragmentStart) {
      EXPECT_EQ(open_fragment, -1) << "fragment_start inside an open fragment";
      EXPECT_EQ(event.fragment, static_cast<std::int64_t>(starts))
          << "fragment streams out of ordinal order";
      open_fragment = event.fragment;
      ++starts;
    } else if (event.kind == TraceEventKind::kFragmentEnd) {
      EXPECT_EQ(event.fragment, open_fragment)
          << "fragment_end does not match the open fragment";
      open_fragment = -1;
      ++ends;
    } else {
      EXPECT_NE(open_fragment, -1)
          << "run event outside any fragment bracket: "
          << TraceEventKindToString(event.kind);
    }
  }
  EXPECT_EQ(open_fragment, -1) << "unclosed fragment stream";
  EXPECT_EQ(starts, plan.fragments().size());
  EXPECT_EQ(ends, plan.fragments().size());
  return run;
}

TEST_P(CorpusDifferentialSweep, ByteIdenticalAcrossThreadsAndKernelTiers) {
  const CorpusDiffParam param = GetParam();
  const CorpusPlan plan = BuildPlan(param);
  ASSERT_GE(plan.fragments().size(), 2u)
      << "sweep configuration must cut multiple fragments";
  const MinerConfig base = BaseConfig(param);

  // The bits tier must actually engage (window fits 64 bits) or the tier
  // axis of this sweep is vacuous.
  GapRequirement gap =
      *GapRequirement::Create(base.min_gap, base.max_gap);
  ASSERT_EQ(ResolveKernel(KernelTier::kBits, gap), KernelImpl::kBits);

  const ReferenceAggregate reference = SerialReference(plan, base);
  const CorpusRun anchor = RunCorpus(plan, base, KernelTier::kScalar, 1);
  EXPECT_EQ(anchor.patterns, reference.canonical_patterns)
      << "executor aggregate drifted from the serial reference loop";
  EXPECT_EQ(anchor.fragment_counts, reference.fragment_counts);
  EXPECT_EQ(anchor.result.fragments_planned, plan.fragments().size());
  EXPECT_EQ(anchor.result.fragments_completed, plan.fragments().size());

  for (KernelTier tier : {KernelTier::kScalar, KernelTier::kBits}) {
    for (std::int64_t threads :
         {std::int64_t{1}, std::int64_t{2}, std::int64_t{8}}) {
      SCOPED_TRACE(std::string(KernelTierToString(tier)) +
                   " corpus_threads=" + std::to_string(threads));
      const CorpusRun run = RunCorpus(plan, base, tier, threads);
      EXPECT_EQ(run.patterns, reference.canonical_patterns)
          << "pattern union drifted from the serial scalar reference";
      EXPECT_EQ(run.fragment_counts, reference.fragment_counts)
          << "per-pattern fragment counts drifted";
      EXPECT_EQ(run.metrics_json, anchor.metrics_json)
          << "metrics export is not byte-stable across threads/tiers";
      EXPECT_EQ(run.trace_json, anchor.trace_json)
          << "trace export is not byte-stable across threads/tiers";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeededCorpora, CorpusDifferentialSweep,
    testing::Values(
        // alphabet, records, record_len, frag_len, keep_tail, N, M, rho, seed
        CorpusDiffParam{"ACGT", 2, 90, 30, false, 1, 2, 0.02, 4001},
        CorpusDiffParam{"ACGT", 3, 80, 25, true, 0, 1, 0.05, 4002},
        CorpusDiffParam{"ACGT", 2, 100, 40, false, 2, 4, 0.01, 4003},
        CorpusDiffParam{"AB", 2, 70, 20, true, 1, 2, 0.08, 4004},
        CorpusDiffParam{"AB", 3, 60, 30, false, 0, 2, 0.1, 4005},
        CorpusDiffParam{"ABC", 2, 84, 28, false, 2, 3, 0.02, 4006},
        CorpusDiffParam{"ACGT", 1, 120, 30, false, 3, 3, 0.01, 4007},
        CorpusDiffParam{"ACGT", 2, 96, 32, true, 0, 0, 0.02, 4008},
        CorpusDiffParam{"ABCDE", 2, 72, 24, false, 1, 2, 0.01, 4009},
        CorpusDiffParam{"ACGT", 4, 50, 22, true, 1, 3, 0.04, 4010}));

}  // namespace
}  // namespace pgm
