#include <gtest/gtest.h>

#include <set>

#include "core/em.h"
#include "core/miner.h"
#include "datagen/generators.h"
#include "datagen/planting.h"
#include "util/random.h"

namespace pgm {
namespace {

Sequence RandomSeq(std::size_t length, std::uint64_t seed) {
  Rng rng(seed);
  return *UniformRandomSequence(length, Alphabet::Dna(), rng);
}

MinerConfig BaseConfig() {
  MinerConfig config;
  config.min_gap = 1;
  config.max_gap = 3;
  config.min_support_ratio = 0.01;
  config.start_length = 1;
  config.em_order = 3;
  return config;
}

TEST(MppmTest, FindsSameFrequentPatternsAsWorstCaseMpp) {
  for (std::uint64_t seed : {21u, 22u, 23u}) {
    Sequence s = RandomSeq(100, seed);
    MinerConfig config = BaseConfig();
    MiningResult mppm = *MineMppm(s, config);
    MinerConfig worst = config;
    worst.user_n = -1;
    MiningResult mpp = *MineMpp(s, worst);
    ASSERT_EQ(mppm.patterns.size(), mpp.patterns.size()) << "seed " << seed;
    for (std::size_t i = 0; i < mppm.patterns.size(); ++i) {
      EXPECT_TRUE(mppm.patterns[i].pattern == mpp.patterns[i].pattern);
      EXPECT_EQ(mppm.patterns[i].support, mpp.patterns[i].support);
    }
  }
}

TEST(MppmTest, RecordsEmAndEstimate) {
  Sequence s = RandomSeq(100, 31);
  MinerConfig config = BaseConfig();
  MiningResult result = *MineMppm(s, config);
  GapRequirement gap = *GapRequirement::Create(1, 3);
  EmResult em = *ComputeEm(s, gap, config.em_order);
  EXPECT_EQ(result.em, em.em);
  EXPECT_GE(result.estimated_n, config.start_length);
  EXPECT_LE(result.estimated_n, gap.MaxGuaranteedLength(100));
  EXPECT_EQ(result.n_used, result.estimated_n);
  EXPECT_GE(result.em_seconds, 0.0);
  EXPECT_GE(result.total_seconds, result.em_seconds);
}

TEST(MppmTest, EstimateCoversLongestFrequentPattern) {
  // The estimate n is an upper bound on the longest frequent pattern
  // length — otherwise MPPm could miss patterns (Theorem 2 soundness).
  for (std::uint64_t seed : {41u, 42u, 43u, 44u}) {
    Sequence s = RandomSeq(150, seed);
    MiningResult result = *MineMppm(s, BaseConfig());
    EXPECT_GE(result.estimated_n, result.longest_frequent_length)
        << "seed " << seed;
  }
}

TEST(MppmTest, EstimateCoversPlantedPattern) {
  // Plant a dense run so long patterns are genuinely frequent, then check
  // the estimate still covers them.
  Sequence s = RandomSeq(200, 51);
  Rng rng(52);
  s = *PlantNoisyTandemRun(s, "A", 50, 60, 1.0, rng);
  MinerConfig config = BaseConfig();
  config.min_support_ratio = 0.0005;
  MiningResult result = *MineMppm(s, config);
  EXPECT_GT(result.longest_frequent_length, 4);
  EXPECT_GE(result.estimated_n, result.longest_frequent_length);
}

TEST(MppmTest, EmBoundTightensTheEstimate) {
  Sequence s = RandomSeq(150, 61);
  MinerConfig with_em = BaseConfig();
  with_em.use_em_bound = true;
  MinerConfig without_em = BaseConfig();
  without_em.use_em_bound = false;
  MiningResult tight = *MineMppm(s, with_em);
  MiningResult loose = *MineMppm(s, without_em);
  // Theorem 2's factor is >= Theorem 1's, so the estimate can only shrink.
  EXPECT_LE(tight.estimated_n, loose.estimated_n);
  // Both must still find the same frequent patterns.
  EXPECT_EQ(tight.patterns.size(), loose.patterns.size());
}

TEST(MppmTest, LooseBoundDegeneratesTowardL1OnRandomData) {
  Sequence s = RandomSeq(150, 71);
  MinerConfig config = BaseConfig();
  config.use_em_bound = false;
  MiningResult result = *MineMppm(s, config);
  GapRequirement gap = *GapRequirement::Create(1, 3);
  // Without the e_m tightening, λ alone decays so slowly that the scan
  // accepts a very large k on random data.
  EXPECT_GT(result.estimated_n, gap.MaxGuaranteedLength(150) / 2);
}

TEST(MppmTest, ShortSequenceWithZeroEm) {
  // Sequence too short for any complete (m+1)-window: e_m = 0, and mining
  // still returns a sound (possibly empty) result.
  Sequence s = *Sequence::FromString("ACGTA", Alphabet::Dna());
  MinerConfig config = BaseConfig();
  config.em_order = 10;
  config.min_support_ratio = 0.5;
  StatusOr<MiningResult> result = MineMppm(s, config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->em, 0u);
}

TEST(MppmTest, CandidateCountsNeverExceedWorstCase) {
  Sequence s = RandomSeq(200, 81);
  MinerConfig config = BaseConfig();
  config.min_support_ratio = 0.003;
  MiningResult mppm = *MineMppm(s, config);
  MinerConfig worst = config;
  worst.user_n = -1;
  MiningResult mpp = *MineMpp(s, worst);
  EXPECT_LE(mppm.total_candidates, mpp.total_candidates);
}

}  // namespace
}  // namespace pgm
