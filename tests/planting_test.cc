#include "datagen/planting.h"

#include <gtest/gtest.h>

#include "core/verifier.h"
#include "datagen/generators.h"
#include "util/random.h"

namespace pgm {
namespace {

Sequence Base(std::size_t length, std::uint64_t seed) {
  Rng rng(seed);
  return *UniformRandomSequence(length, Alphabet::Dna(), rng);
}

TEST(PlantTandemTest, OverwritesExactRegion) {
  Sequence base = Base(20, 1);
  Sequence planted = *PlantTandemRun(base, "ACG", 5, 3);
  EXPECT_EQ(planted.Subsequence(5, 9).ToString(), "ACGACGACG");
  // Everything outside the run is untouched.
  EXPECT_EQ(planted.Subsequence(0, 5).ToString(),
            base.Subsequence(0, 5).ToString());
  EXPECT_EQ(planted.Subsequence(14, 6).ToString(),
            base.Subsequence(14, 6).ToString());
}

TEST(PlantTandemTest, SingleCharMotif) {
  Sequence base = Base(10, 2);
  Sequence planted = *PlantTandemRun(base, "T", 0, 10);
  EXPECT_EQ(planted.ToString(), "TTTTTTTTTT");
}

TEST(PlantTandemTest, ValidatesBounds) {
  Sequence base = Base(10, 3);
  EXPECT_FALSE(PlantTandemRun(base, "ACG", 5, 2).ok());   // 5+6 > 10
  EXPECT_TRUE(PlantTandemRun(base, "ACG", 4, 2).ok());    // 4+6 == 10
  EXPECT_FALSE(PlantTandemRun(base, "", 0, 2).ok());
  EXPECT_FALSE(PlantTandemRun(base, "AC", 0, 0).ok());
  EXPECT_FALSE(PlantTandemRun(base, "AXC", 0, 2).ok());   // bad character
}

TEST(PlantNoisyTest, FullPurityEqualsExactRun) {
  Sequence base = Base(30, 4);
  Rng rng(5);
  Sequence noisy = *PlantNoisyTandemRun(base, "AT", 3, 10, 1.0, rng);
  Sequence exact = *PlantTandemRun(base, "AT", 3, 10);
  EXPECT_EQ(noisy.ToString(), exact.ToString());
}

TEST(PlantNoisyTest, ZeroPurityLeavesBaseUnchanged) {
  Sequence base = Base(30, 6);
  Rng rng(7);
  Sequence noisy = *PlantNoisyTandemRun(base, "AT", 3, 10, 0.0, rng);
  EXPECT_EQ(noisy.ToString(), base.ToString());
}

TEST(PlantNoisyTest, IntermediatePurityMixes) {
  Sequence base = Base(2000, 8);
  Rng rng(9);
  Sequence noisy = *PlantNoisyTandemRun(base, "A", 0, 2000, 0.8, rng);
  std::size_t motif_chars = 0;
  for (std::size_t i = 0; i < noisy.size(); ++i) {
    if (noisy.CharAt(i) == 'A') ++motif_chars;
  }
  // ~80% planted + ~25% of the remaining 20% already-A background.
  EXPECT_NEAR(static_cast<double>(motif_chars) / 2000, 0.85, 0.04);
}

TEST(PlantNoisyTest, ValidatesPurity) {
  Sequence base = Base(30, 10);
  Rng rng(11);
  EXPECT_FALSE(PlantNoisyTandemRun(base, "A", 0, 5, -0.1, rng).ok());
  EXPECT_FALSE(PlantNoisyTandemRun(base, "A", 0, 5, 1.1, rng).ok());
}

TEST(PlantGappedTest, OccurrencesActuallyMatch) {
  Sequence base = Base(200, 12);
  Pattern p = *Pattern::Parse("GCGT", Alphabet::Dna());
  GapRequirement gap = *GapRequirement::Create(3, 5);
  Rng rng(13);
  std::vector<std::size_t> anchors;
  Sequence planted = *PlantGappedOccurrences(base, p, gap, 5, rng, &anchors);
  EXPECT_EQ(anchors.size(), 5u);
  // The pattern now matches with at least one offset sequence starting at
  // every recorded anchor (later plants may overwrite earlier ones, but
  // each anchor at least has the first character).
  const std::uint64_t support = CountSupport(planted, p, gap)->count;
  EXPECT_GT(support, 0u);
  // All anchors leave room for the maximum span.
  for (std::size_t anchor : anchors) {
    EXPECT_LE(anchor + gap.MaxSpan(4), 200);
  }
}

TEST(PlantGappedTest, SupportIncreasesMonotonically) {
  Sequence base = Base(300, 14);
  Pattern p = *Pattern::Parse("CCGG", Alphabet::Dna());
  GapRequirement gap = *GapRequirement::Create(2, 4);
  Rng rng(15);
  const std::uint64_t before = CountSupport(base, p, gap)->count;
  Sequence planted = *PlantGappedOccurrences(base, p, gap, 20, rng);
  const std::uint64_t after = CountSupport(planted, p, gap)->count;
  EXPECT_GT(after, before);
}

TEST(PlantGappedTest, ValidatesSpanAndAlphabet) {
  Sequence base = Base(10, 16);
  GapRequirement gap = *GapRequirement::Create(5, 9);
  Rng rng(17);
  Pattern p = *Pattern::Parse("ACG", Alphabet::Dna());
  // maxspan(3) = 3 + 2*9 = 21 > 10.
  EXPECT_FALSE(PlantGappedOccurrences(base, p, gap, 1, rng).ok());
  Pattern protein = *Pattern::Parse("LW", Alphabet::Protein());
  EXPECT_FALSE(
      PlantGappedOccurrences(base, protein, *GapRequirement::Create(0, 1), 1,
                             rng)
          .ok());
}

TEST(PlantGappedTest, ZeroOccurrencesIsIdentity) {
  Sequence base = Base(50, 18);
  Pattern p = *Pattern::Parse("AC", Alphabet::Dna());
  GapRequirement gap = *GapRequirement::Create(1, 2);
  Rng rng(19);
  Sequence planted = *PlantGappedOccurrences(base, p, gap, 0, rng);
  EXPECT_EQ(planted.ToString(), base.ToString());
}

}  // namespace
}  // namespace pgm
