// Empirical verification of the paper's pruning theorems on randomized
// inputs: the bounds must hold for every pattern/sub-pattern pair, since
// the miners' completeness rests on them.

#include <gtest/gtest.h>

#include <cmath>

#include "core/em.h"
#include "core/offset_counter.h"
#include "core/verifier.h"
#include "datagen/generators.h"
#include "util/random.h"

namespace pgm {
namespace {

// Theorem 1: sup(Q) >= sup(P) / W^d for every length-(l-d) contiguous
// sub-pattern Q of P.
TEST(TheoremBoundsTest, TheoremOneHoldsForAllSubPatterns) {
  Rng rng(3001);
  GapRequirement gap = *GapRequirement::Create(1, 3);
  const long double w = gap.flexibility();
  for (int trial = 0; trial < 30; ++trial) {
    Sequence s = *UniformRandomSequence(60, Alphabet::Dna(), rng);
    const std::size_t l = 2 + rng.UniformInt(4);  // pattern length 2..5
    std::vector<Symbol> symbols;
    for (std::size_t i = 0; i < l; ++i) {
      symbols.push_back(static_cast<Symbol>(rng.UniformInt(4)));
    }
    Pattern p = *Pattern::FromSymbols(symbols, Alphabet::Dna());
    const std::uint64_t sup_p = CountSupport(s, p, gap)->count;
    for (std::size_t start = 0; start < l; ++start) {
      for (std::size_t count = 1; start + count <= l; ++count) {
        Pattern q = p.SubPattern(start, count);
        const std::uint64_t sup_q = CountSupport(s, q, gap)->count;
        const std::size_t d = l - count;
        const long double bound =
            static_cast<long double>(sup_p) / std::pow(w, static_cast<long double>(d));
        EXPECT_GE(static_cast<long double>(sup_q) + 1e-9L, bound)
            << "P=" << p.ToShorthand() << " Q=" << q.ToShorthand()
            << " trial=" << trial;
      }
    }
  }
}

// Theorem 1's bound is tight in the homopolymer worst case: for S = A^n,
// every perturbation of the dropped offsets matches, so sup(Q) is exactly
// close to sup(P)/W^d scaled by boundary effects.
TEST(TheoremBoundsTest, TheoremOneNearTightOnHomopolymer) {
  Sequence s = *Sequence::FromString(std::string(60, 'A'), Alphabet::Dna());
  GapRequirement gap = *GapRequirement::Create(1, 3);
  Pattern p = *Pattern::Parse("AAAA", Alphabet::Dna());
  Pattern q = *Pattern::Parse("AAA", Alphabet::Dna());
  const double sup_p = static_cast<double>(CountSupport(s, p, gap)->count);
  const double sup_q = static_cast<double>(CountSupport(s, q, gap)->count);
  EXPECT_GE(sup_q, sup_p / 3.0);
  // Within a factor ~2 of the bound (boundary effects only).
  EXPECT_LE(sup_q, 2.0 * sup_p / 3.0);
}

// Theorem 2: sup(Q) >= sup(P) / (e_m^s * W^t) for the length-(l-d) PREFIX
// Q of P, with s = floor(d/m), t = d - s*m.
TEST(TheoremBoundsTest, TheoremTwoHoldsForPrefixes) {
  Rng rng(3002);
  GapRequirement gap = *GapRequirement::Create(1, 2);
  const long double w = gap.flexibility();
  const std::int64_t m = 2;
  for (int trial = 0; trial < 20; ++trial) {
    Sequence s = *UniformRandomSequence(50, Alphabet::Dna(), rng);
    EmResult em = *ComputeEm(s, gap, m);
    if (em.em == 0) continue;
    const std::size_t l = 3 + rng.UniformInt(3);  // 3..5
    std::vector<Symbol> symbols;
    for (std::size_t i = 0; i < l; ++i) {
      symbols.push_back(static_cast<Symbol>(rng.UniformInt(4)));
    }
    Pattern p = *Pattern::FromSymbols(symbols, Alphabet::Dna());
    const std::uint64_t sup_p = CountSupport(s, p, gap)->count;
    for (std::size_t keep = 1; keep < l; ++keep) {
      Pattern q = p.SubPattern(0, keep);
      const std::uint64_t sup_q = CountSupport(s, q, gap)->count;
      const std::int64_t d = static_cast<std::int64_t>(l - keep);
      const std::int64_t steps = d / m;
      const std::int64_t t = d - steps * m;
      const long double denominator =
          std::pow(static_cast<long double>(em.em),
                   static_cast<long double>(steps)) *
          std::pow(w, static_cast<long double>(t));
      EXPECT_GE(static_cast<long double>(sup_q) + 1e-9L,
                static_cast<long double>(sup_p) / denominator)
          << "P=" << p.ToShorthand() << " keep=" << keep << " trial=" << trial;
    }
  }
}

// The λ-threshold form (Equation 2): if P is frequent at ρs, every length-i
// sub-pattern has support ratio >= λ_{l,l-i} * ρs. Verified on a dense
// input where long patterns are genuinely frequent.
TEST(TheoremBoundsTest, LambdaThresholdFormHolds) {
  Rng rng(3003);
  Sequence s = *UniformRandomSequence(80, Alphabet::Dna(), rng);
  GapRequirement gap = *GapRequirement::Create(1, 3);
  OffsetCounter counter(80, gap);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t l = 2 + rng.UniformInt(3);
    std::vector<Symbol> symbols;
    for (std::size_t i = 0; i < l; ++i) {
      symbols.push_back(static_cast<Symbol>(rng.UniformInt(4)));
    }
    Pattern p = *Pattern::FromSymbols(symbols, Alphabet::Dna());
    const std::uint64_t sup_p = CountSupport(s, p, gap)->count;
    if (sup_p == 0) continue;
    // Treat P's own ratio as ρs: P is then (just) frequent.
    const long double rho =
        static_cast<long double>(sup_p) / counter.Count(l);
    for (std::size_t start = 0; start < l; ++start) {
      for (std::size_t count = 1; start + count <= l; ++count) {
        Pattern q = p.SubPattern(start, count);
        const std::uint64_t sup_q = CountSupport(s, q, gap)->count;
        const long double lambda =
            counter.Lambda(static_cast<std::int64_t>(l),
                           static_cast<std::int64_t>(l - count));
        const long double threshold = lambda * rho * counter.Count(count);
        EXPECT_GE(static_cast<long double>(sup_q) * (1 + 1e-12L) + 1e-9L,
                  threshold)
            << "P=" << p.ToShorthand() << " Q=" << q.ToShorthand();
      }
    }
  }
}

// The paper's canonical counter-example: the raw Apriori property fails,
// which is exactly why the λ machinery exists.
TEST(TheoremBoundsTest, RawAprioriFailsButTheoremOneStillHolds) {
  Sequence s = *Sequence::FromString("ACTTT", Alphabet::Dna());
  GapRequirement gap = *GapRequirement::Create(1, 3);
  Pattern at = *Pattern::Parse("AT", Alphabet::Dna());
  Pattern a = *Pattern::Parse("A", Alphabet::Dna());
  const std::uint64_t sup_at = CountSupport(s, at, gap)->count;
  const std::uint64_t sup_a = CountSupport(s, a, gap)->count;
  EXPECT_GT(sup_at, sup_a);                      // Apriori violated
  EXPECT_GE(sup_a, sup_at / 3);                  // Theorem 1 intact (W=3, d=1)
}

}  // namespace
}  // namespace pgm
