// Unit suite for the pgm_analyze passes (tools/lint/analyze.h): manifest
// parsing and validation, module mapping, the layering and lock-order
// passes, and the include-cycle project pass. The shipped manifests under
// tools/lint/manifests/ are loaded and sanity-checked too, so a bad edit
// there fails tier-1, not just `ctest -L lint`. PGM_LINT_SOURCE_DIR is
// injected by tests/CMakeLists.txt.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "tools/lint/analyze.h"
#include "tools/lint/lint.h"
#include "util/mutex.h"

namespace pgm {
namespace lint {
namespace {

/// Runs a pass over in-memory source the way LintSource would: split and
/// strip first, then hand both views to the checker.
template <typename Pass, typename Manifest>
std::vector<Finding> RunPass(Pass pass, const std::string& path,
                             const std::string& content,
                             const Manifest& manifest) {
  std::vector<std::string> raw;
  std::vector<std::string> stripped;
  internal::SplitAndStrip(content, &raw, &stripped);
  return pass(path, raw, stripped, manifest);
}

// --- Manifest parsing ---

TEST(LayeringManifestTest, ParsesModulesAndDeps) {
  StatusOr<LayeringManifest> manifest =
      LayeringManifest::Parse("# comment\nutil:\ncore: util seq\nseq: util\n");
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  EXPECT_EQ(manifest.value().allowed.size(), 3u);
  EXPECT_EQ(manifest.value().allowed.at("core"),
            (std::set<std::string>{"util", "seq"}));
  EXPECT_TRUE(manifest.value().allowed.at("util").empty());
}

TEST(LayeringManifestTest, RejectsMalformedAndDuplicateLines) {
  EXPECT_FALSE(LayeringManifest::Parse("no-colon-here\n").ok());
  EXPECT_FALSE(LayeringManifest::Parse("util:\nutil: core\n").ok());
  EXPECT_FALSE(LayeringManifest::Parse("# only comments\n").ok());
}

TEST(LayeringManifestTest, SelfEdgesAreImplicit) {
  StatusOr<LayeringManifest> manifest =
      LayeringManifest::Parse("core: core util\nutil:\n");
  ASSERT_TRUE(manifest.ok());
  // The explicit self-edge is dropped; in-module includes are always legal.
  EXPECT_EQ(manifest.value().allowed.at("core"),
            std::set<std::string>{"util"});
}

TEST(LayeringManifestTest, CycleDetectionNamesThePath) {
  StatusOr<LayeringManifest> manifest =
      LayeringManifest::Parse("a: b\nb: c\nc: a\n");
  ASSERT_TRUE(manifest.ok());
  const Status cyclic = manifest.value().CheckAcyclic();
  EXPECT_FALSE(cyclic.ok());
  EXPECT_NE(cyclic.ToString().find("cycle"), std::string::npos);

  StatusOr<LayeringManifest> dag = LayeringManifest::Parse("a: b\nb: c\nc:\n");
  ASSERT_TRUE(dag.ok());
  EXPECT_TRUE(dag.value().CheckAcyclic().ok());
}

TEST(LockOrderManifestTest, ParsesRankedLocks) {
  StatusOr<LockOrderManifest> manifest = LockOrderManifest::Parse(
      "# hierarchy\n10 queue serve/queue mutex_\n20 pool util/pool mu_\n");
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  ASSERT_EQ(manifest.value().locks.size(), 2u);
  EXPECT_EQ(manifest.value().locks[0].name, "queue");
  EXPECT_EQ(manifest.value().locks[0].rank, 10);
  EXPECT_EQ(manifest.value().locks[1].expression, "mu_");
}

TEST(LockOrderManifestTest, RejectsBadRanksAndArity) {
  EXPECT_FALSE(LockOrderManifest::Parse("ten queue q mu\n").ok());
  EXPECT_FALSE(LockOrderManifest::Parse("-5 queue q mu\n").ok());
  EXPECT_FALSE(LockOrderManifest::Parse("10 queue q\n").ok());
  // Duplicate rank: the hierarchy must be a total order.
  EXPECT_FALSE(
      LockOrderManifest::Parse("10 a p1 m1\n10 b p2 m2\n").ok());
}

TEST(LockOrderManifestTest, ResolvesByPathAndExpression) {
  StatusOr<LockOrderManifest> manifest = LockOrderManifest::Parse(
      "10 queue serve/queue mutex_\n20 pool util/pool mu_\n");
  ASSERT_TRUE(manifest.ok());
  const RankedLock* lock =
      manifest.value().Resolve("src/serve/queue.cc", "mutex_");
  ASSERT_NE(lock, nullptr);
  EXPECT_EQ(lock->name, "queue");
  // Wrong path, wrong expression, and substring-not-word all miss.
  EXPECT_EQ(manifest.value().Resolve("src/core/miner.cc", "mutex_"), nullptr);
  EXPECT_EQ(manifest.value().Resolve("src/serve/queue.cc", "other_"), nullptr);
  EXPECT_EQ(manifest.value().Resolve("src/util/pool.cc", "mu_tated"), nullptr);
}

TEST(DeterminismManifestTest, ParsesSeamsAndRejectsUnknownDirectives) {
  StatusOr<DeterminismManifest> manifest =
      DeterminismManifest::Parse("wall-clock-seam bench/\n");
  ASSERT_TRUE(manifest.ok());
  EXPECT_TRUE(manifest.value().SanctionsWallClock("bench/bench_em.cc"));
  EXPECT_FALSE(manifest.value().SanctionsWallClock("src/core/miner.cc"));
  EXPECT_FALSE(DeterminismManifest::Parse("clock-seam bench/\n").ok());
  EXPECT_FALSE(DeterminismManifest::Parse("wall-clock-seam\n").ok());
}

// --- Module mapping ---

TEST(ModuleOfTest, MapsSrcSubdirsAndTopDirs) {
  EXPECT_EQ(ModuleOf("src/core/miner.cc"), "core");
  EXPECT_EQ(ModuleOf("/root/repo/src/util/io.h"), "util");
  EXPECT_EQ(ModuleOf("tools/lint/lint.cc"), "tools");
  EXPECT_EQ(ModuleOf("tests/analyze_test.cc"), "tests");
  EXPECT_EQ(ModuleOf("bench/bench_em.cc"), "bench");
  EXPECT_EQ(ModuleOf("examples/quickstart.cpp"), "examples");
  EXPECT_EQ(ModuleOf("README.md"), "");
}

TEST(IncludeTargetModuleTest, NormalizesSrcPrefix) {
  EXPECT_EQ(IncludeTargetModule("util/io.h"), "util");
  EXPECT_EQ(IncludeTargetModule("src/util/io.h"), "util");
  EXPECT_EQ(IncludeTargetModule("tools/lint/lint.h"), "tools");
  // A flat include ("gtest.h") maps to no module and is never an edge.
  EXPECT_EQ(IncludeTargetModule("gtest.h"), "");
}

// --- Layering pass ---

TEST(CheckLayeringTest, FlagsUndeclaredEdgeAndHonorsWaiver) {
  StatusOr<LayeringManifest> manifest =
      LayeringManifest::Parse("core: util\nutil:\nserve: core util\n");
  ASSERT_TRUE(manifest.ok());
  const std::string bad =
      "#include \"serve/service.h\"\n#include \"util/io.h\"\n";
  std::vector<Finding> findings =
      RunPass(CheckLayering, "src/core/miner.cc", bad, manifest.value());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "layering");
  EXPECT_EQ(findings[0].line, 1u);
  EXPECT_NE(findings[0].message.find("core -> serve"), std::string::npos);

  const std::string waived =
      "// pgm-lint: allow(layering)\n#include \"serve/service.h\"\n";
  EXPECT_TRUE(
      RunPass(CheckLayering, "src/core/miner.cc", waived, manifest.value())
          .empty());
}

TEST(CheckLayeringTest, IgnoresCommentedIncludesAndSystemHeaders) {
  StatusOr<LayeringManifest> manifest =
      LayeringManifest::Parse("core: util\nutil:\n");
  ASSERT_TRUE(manifest.ok());
  const std::string content =
      "// #include \"serve/service.h\"\n"
      "#include <vector>\n"
      "#include \"util/io.h\"\n";
  EXPECT_TRUE(
      RunPass(CheckLayering, "src/core/miner.cc", content, manifest.value())
          .empty());
}

TEST(CheckLayeringTest, FlagsModuleMissingFromManifest) {
  StatusOr<LayeringManifest> manifest = LayeringManifest::Parse("util:\n");
  ASSERT_TRUE(manifest.ok());
  std::vector<Finding> findings = RunPass(
      CheckLayering, "src/core/miner.cc", "#include \"util/io.h\"\n",
      manifest.value());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("not declared"), std::string::npos);
}

// --- Lock-order pass ---

TEST(CheckLockOrderTest, FlagsInversionAcrossNestedScopes) {
  StatusOr<LockOrderManifest> manifest = LockOrderManifest::Parse(
      "10 outer x outer_mu\n20 inner x inner_mu\n");
  ASSERT_TRUE(manifest.ok());
  const std::string bad =
      "void f(S& s) {\n"
      "  MutexLock inner(s.inner_mu);\n"
      "  {\n"
      "    MutexLock outer(s.outer_mu);\n"
      "  }\n"
      "}\n";
  std::vector<Finding> findings =
      RunPass(CheckLockOrder, "src/x/f.cc", bad, manifest.value());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 4u);
  EXPECT_EQ(findings[0].rule, "lock-order");
}

TEST(CheckLockOrderTest, ScopeExitReleasesTheRank) {
  StatusOr<LockOrderManifest> manifest = LockOrderManifest::Parse(
      "10 outer x outer_mu\n20 inner x inner_mu\n");
  ASSERT_TRUE(manifest.ok());
  // Sequential (non-nested) scopes in any order are legal: the first lock
  // is released before the second is acquired.
  const std::string sequential =
      "void f(S& s) {\n"
      "  { MutexLock inner(s.inner_mu); }\n"
      "  { MutexLock outer(s.outer_mu); }\n"
      "}\n";
  EXPECT_TRUE(
      RunPass(CheckLockOrder, "src/x/f.cc", sequential, manifest.value())
          .empty());
  // In-order nesting is legal too.
  const std::string nested =
      "void f(S& s) {\n"
      "  MutexLock outer(s.outer_mu);\n"
      "  { MutexLock inner(s.inner_mu); }\n"
      "}\n";
  EXPECT_TRUE(
      RunPass(CheckLockOrder, "src/x/f.cc", nested, manifest.value())
          .empty());
}

TEST(CheckLockOrderTest, UnrankedLocksAreExempt) {
  StatusOr<LockOrderManifest> manifest =
      LockOrderManifest::Parse("10 outer x outer_mu\n");
  ASSERT_TRUE(manifest.ok());
  const std::string content =
      "void f(S& s) {\n"
      "  MutexLock a(s.scratch_mu);\n"
      "  MutexLock b(s.outer_mu);\n"
      "}\n";
  EXPECT_TRUE(
      RunPass(CheckLockOrder, "src/x/f.cc", content, manifest.value())
          .empty());
}

// --- Include-cycle project pass ---

TEST(CheckIncludeCyclesTest, FlagsCycleAndNamesThePath) {
  std::vector<std::pair<std::string, std::string>> files = {
      {"src/a/one.h", "#include \"a/two.h\"\n"},
      {"src/a/two.h", "#include \"a/one.h\"\n"},
      {"src/a/leaf.h", "#include \"a/one.h\"\n"},
  };
  std::vector<Finding> findings = CheckIncludeCycles(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "include-cycle");
  EXPECT_NE(findings[0].message.find("one.h"), std::string::npos);
  EXPECT_NE(findings[0].message.find("two.h"), std::string::npos);
}

TEST(CheckIncludeCyclesTest, WaiverOnTheBackEdgeSilences) {
  std::vector<std::pair<std::string, std::string>> files = {
      {"src/a/one.h", "#include \"a/two.h\"\n"},
      {"src/a/two.h",
       "// pgm-lint: allow(include-cycle)\n#include \"a/one.h\"\n"},
  };
  EXPECT_TRUE(CheckIncludeCycles(files).empty());
}

TEST(CheckIncludeCyclesTest, AcyclicGraphIsSilent) {
  std::vector<std::pair<std::string, std::string>> files = {
      {"src/a/one.h", "#include \"a/two.h\"\n#include \"a/three.h\"\n"},
      {"src/a/two.h", "#include \"a/three.h\"\n"},
      {"src/a/three.h", "#include <vector>\n"},
  };
  EXPECT_TRUE(CheckIncludeCycles(files).empty());
}

// --- The shipped manifests ---

TEST(ShippedManifestsTest, LoadAndValidate) {
  StatusOr<AnalyzerManifests> manifests =
      LoadManifests(std::string(PGM_LINT_SOURCE_DIR) + "/tools/lint/manifests");
  ASSERT_TRUE(manifests.ok()) << manifests.status().ToString();
  // The DAG bottom: util depends on nothing; everything may reach util.
  EXPECT_TRUE(manifests.value().layering.allowed.at("util").empty());
  for (const auto& [module, deps] : manifests.value().layering.allowed) {
    if (module != "util") {
      EXPECT_EQ(deps.count("util"), 1u) << module;
    }
  }
  // The lock hierarchy matches util/mutex.h's LockRank values.
  ASSERT_EQ(manifests.value().lock_order.locks.size(), 8u);
  EXPECT_EQ(manifests.value().lock_order.locks.front().rank, 10);
  EXPECT_EQ(manifests.value().lock_order.locks.back().rank, 80);
  // The stopwatch seam exists: it is the sanctioned timing primitive.
  EXPECT_TRUE(manifests.value().determinism.SanctionsWallClock(
      "src/util/stopwatch.h"));
  EXPECT_FALSE(
      manifests.value().determinism.SanctionsWallClock("src/core/miner.cc"));
}

TEST(ShippedManifestsTest, DeclaredHierarchyMatchesRuntimeRanks) {
  StatusOr<AnalyzerManifests> manifests =
      LoadManifests(std::string(PGM_LINT_SOURCE_DIR) + "/tools/lint/manifests");
  ASSERT_TRUE(manifests.ok());
  // The static manifest and the runtime LockRank enum must agree rank by
  // rank — the two enforcement layers check the same hierarchy.
  const std::vector<std::pair<std::string, int>> expected = {
      {"queue", kLockRankQueue},     {"service", kLockRankService},
      {"cache", kLockRankCache},     {"pool", kLockRankPool},
      {"ring", kLockRankRing},       {"metrics", kLockRankMetrics},
      {"trace", kLockRankTrace},     {"backoff", kLockRankBackoff},
  };
  ASSERT_EQ(manifests.value().lock_order.locks.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(manifests.value().lock_order.locks[i].name, expected[i].first);
    EXPECT_EQ(manifests.value().lock_order.locks[i].rank, expected[i].second);
  }
}

}  // namespace
}  // namespace lint
}  // namespace pgm
