#include "core/offset_counter.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

namespace pgm {
namespace {

TEST(OffsetCounterTest, NOneIsSequenceLength) {
  for (std::int64_t L : {1, 10, 1000}) {
    OffsetCounter counter(L, *GapRequirement::Create(3, 7));
    EXPECT_EQ(static_cast<std::int64_t>(counter.Count(1)), L);
  }
}

TEST(OffsetCounterTest, ZeroBeyondL2) {
  GapRequirement gap = *GapRequirement::Create(2, 4);
  OffsetCounter counter(20, gap);
  EXPECT_GT(counter.Count(counter.l2()), 0.0L);
  EXPECT_EQ(counter.Count(counter.l2() + 1), 0.0L);
  EXPECT_EQ(counter.Count(counter.l2() + 50), 0.0L);
}

TEST(OffsetCounterTest, L1L2Accessors) {
  GapRequirement gap = *GapRequirement::Create(9, 12);
  OffsetCounter counter(1000, gap);
  EXPECT_EQ(counter.l1(), 77);
  EXPECT_EQ(counter.l2(), 100);
}

TEST(OffsetCounterTest, PaperSection41Example) {
  // "L = 1000, gap [9,12] (W = 4): the number of length-10 offset sequences
  // N10 is about 235 million."
  GapRequirement gap = *GapRequirement::Create(9, 12);
  OffsetCounter counter(1000, gap);
  // Theorem 4: N10 = [1000 - 9*(11.5)] * 4^9 = 896.5 * 262144 = 235,011,?
  long double n10 = counter.Count(10);
  EXPECT_NEAR(static_cast<double>(n10), 896.5 * 262144.0, 1.0);
  EXPECT_GT(n10, 2.3e8);
  EXPECT_LT(n10, 2.4e8);
}

TEST(OffsetCounterTest, TheoremFourClosedFormInGuaranteedRegion) {
  GapRequirement gap = *GapRequirement::Create(1, 3);
  const std::int64_t L = 60;
  OffsetCounter counter(L, gap);
  const long double w = 3.0L;
  for (std::int64_t l = 1; l <= counter.l1(); ++l) {
    long double expected =
        (static_cast<long double>(L) -
         static_cast<long double>(l - 1) * ((1 + 3) / 2.0L + 1.0L)) *
        std::pow(w, static_cast<long double>(l - 1));
    EXPECT_NEAR(static_cast<double>(counter.Count(l)),
                static_cast<double>(expected), 1e-6)
        << "l=" << l;
  }
}

// Exhaustive cross-validation of all three N_l cases against the
// independent position-DP counter.
class OffsetCounterSweep
    : public testing::TestWithParam<std::tuple<std::int64_t, std::int64_t,
                                               std::int64_t>> {};

TEST_P(OffsetCounterSweep, MatchesBruteForceForAllLengths) {
  const auto [L, N, M] = GetParam();
  GapRequirement gap = *GapRequirement::Create(N, M);
  OffsetCounter counter(L, gap);
  for (std::int64_t l = 1; l <= counter.l2() + 2; ++l) {
    const std::uint64_t brute = BruteForceCountOffsetSequences(L, gap, l);
    const long double formula = counter.Count(l);
    EXPECT_EQ(static_cast<std::uint64_t>(formula + 0.5L), brute)
        << "L=" << L << " gap=[" << N << "," << M << "] l=" << l
        << " (l1=" << counter.l1() << ", l2=" << counter.l2() << ")";
  }
}

// Targeted probes of the l1/l2 boundary, where Count switches from the
// Theorem 4 closed form to the case-3 DP: exactly at l1, one past it
// (first DP-backed length), and at l2 (last non-zero length).
class OffsetCounterBoundary
    : public testing::TestWithParam<std::tuple<std::int64_t, std::int64_t,
                                               std::int64_t>> {};

TEST_P(OffsetCounterBoundary, CaseThreeBoundariesMatchBruteForce) {
  const auto [L, N, M] = GetParam();
  GapRequirement gap = *GapRequirement::Create(N, M);
  OffsetCounter counter(L, gap);
  for (std::int64_t l :
       {counter.l1(), counter.l1() + 1, counter.l2()}) {
    if (l < 1) continue;
    const std::uint64_t brute = BruteForceCountOffsetSequences(L, gap, l);
    const long double formula = counter.Count(l);
    EXPECT_EQ(static_cast<std::uint64_t>(formula + 0.5L), brute)
        << "L=" << L << " gap=[" << N << "," << M << "] l=" << l
        << " (l1=" << counter.l1() << ", l2=" << counter.l2() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, OffsetCounterBoundary,
    testing::Values(
        // W > 1 configurations spanning small and larger L.
        std::tuple<std::int64_t, std::int64_t, std::int64_t>{12, 0, 1},
        std::tuple<std::int64_t, std::int64_t, std::int64_t>{25, 1, 3},
        std::tuple<std::int64_t, std::int64_t, std::int64_t>{48, 2, 5},
        std::tuple<std::int64_t, std::int64_t, std::int64_t>{70, 9, 12},
        // Degenerate window W == 1 (N == M): every offset sequence is
        // fully determined by its start, so N_l == L - l*(N+1) + N + 1...
        // which the DP must reproduce exactly at the boundary too.
        std::tuple<std::int64_t, std::int64_t, std::int64_t>{9, 0, 0},
        std::tuple<std::int64_t, std::int64_t, std::int64_t>{21, 2, 2},
        std::tuple<std::int64_t, std::int64_t, std::int64_t>{33, 5, 5}));

INSTANTIATE_TEST_SUITE_P(
    AllCases, OffsetCounterSweep,
    testing::Values(
        std::tuple<std::int64_t, std::int64_t, std::int64_t>{1, 0, 0},
        std::tuple<std::int64_t, std::int64_t, std::int64_t>{5, 0, 0},
        std::tuple<std::int64_t, std::int64_t, std::int64_t>{10, 0, 1},
        std::tuple<std::int64_t, std::int64_t, std::int64_t>{17, 1, 3},
        std::tuple<std::int64_t, std::int64_t, std::int64_t>{23, 2, 2},
        std::tuple<std::int64_t, std::int64_t, std::int64_t>{30, 2, 5},
        std::tuple<std::int64_t, std::int64_t, std::int64_t>{41, 0, 4},
        std::tuple<std::int64_t, std::int64_t, std::int64_t>{50, 3, 4},
        std::tuple<std::int64_t, std::int64_t, std::int64_t>{64, 9, 12},
        std::tuple<std::int64_t, std::int64_t, std::int64_t>{100, 4, 9},
        std::tuple<std::int64_t, std::int64_t, std::int64_t>{7, 1, 1},
        std::tuple<std::int64_t, std::int64_t, std::int64_t>{29, 0, 6},
        std::tuple<std::int64_t, std::int64_t, std::int64_t>{53, 6, 6},
        std::tuple<std::int64_t, std::int64_t, std::int64_t>{37, 1, 5}));

TEST(OffsetCounterTest, FBaseCases) {
  GapRequirement gap = *GapRequirement::Create(2, 4);  // W = 3
  OffsetCounter counter(100, gap);
  // Equation 6: f(l, i) = W^(l-1) for i <= 0.
  EXPECT_EQ(static_cast<double>(counter.F(3, 0)), 9.0);
  EXPECT_EQ(static_cast<double>(counter.F(3, -5)), 9.0);
  // Equation 7: f(l, i) = 0 for i > (l-1)(W-1).
  EXPECT_EQ(static_cast<double>(counter.F(3, 5)), 0.0);
  EXPECT_EQ(static_cast<double>(counter.F(3, 100)), 0.0);
  // Base from the proof: f(2, i) = W - i for 1 <= i <= W-1.
  EXPECT_EQ(static_cast<double>(counter.F(2, 1)), 2.0);
  EXPECT_EQ(static_cast<double>(counter.F(2, 2)), 1.0);
}

TEST(OffsetCounterTest, FSatisfiesEquationEight) {
  // f(k+1, i) = sum_{j=1..W} f(k, i - W + j).
  GapRequirement gap = *GapRequirement::Create(1, 4);  // W = 4
  OffsetCounter counter(100, gap);
  const std::int64_t w = 4;
  for (std::int64_t k = 1; k <= 5; ++k) {
    for (std::int64_t i = 1; i <= (k + 1 - 1) * (w - 1); ++i) {
      long double sum = 0.0L;
      for (std::int64_t j = 1; j <= w; ++j) sum += counter.F(k, i - w + j);
      EXPECT_NEAR(static_cast<double>(counter.F(k + 1, i)),
                  static_cast<double>(sum), 1e-9)
          << "k=" << k << " i=" << i;
    }
  }
}

TEST(OffsetCounterTest, TheoremThreeIdentity) {
  // sum_{i=1}^{(l-1)(W-1)} f(l, i) = (l-1)/2 * (W-1) * W^(l-1).
  for (auto [n, m] : {std::pair{1, 3}, {2, 5}, {0, 2}}) {
    GapRequirement gap = *GapRequirement::Create(n, m);
    OffsetCounter counter(50, gap);
    const std::int64_t w = gap.flexibility();
    for (std::int64_t l = 2; l <= 7; ++l) {
      long double sum = 0.0L;
      for (std::int64_t i = 1; i <= (l - 1) * (w - 1); ++i) {
        sum += counter.F(l, i);
      }
      const long double expected =
          (static_cast<long double>(l - 1) / 2.0L) * (w - 1) *
          std::pow(static_cast<long double>(w), static_cast<long double>(l - 1));
      EXPECT_NEAR(static_cast<double>(sum), static_cast<double>(expected), 1e-6)
          << "gap=[" << n << "," << m << "] l=" << l;
    }
  }
}

TEST(LambdaTest, AlwaysInUnitInterval) {
  GapRequirement gap = *GapRequirement::Create(2, 4);
  OffsetCounter counter(40, gap);
  for (std::int64_t l = 2; l <= counter.l2(); ++l) {
    for (std::int64_t d = 0; d < l; ++d) {
      long double lambda = counter.Lambda(l, d);
      EXPECT_GE(lambda, 0.0L);
      EXPECT_LE(lambda, 1.0L);
    }
  }
}

TEST(LambdaTest, ZeroDIsOne) {
  GapRequirement gap = *GapRequirement::Create(1, 2);
  OffsetCounter counter(30, gap);
  for (std::int64_t l = 1; l <= counter.l2(); ++l) {
    EXPECT_NEAR(static_cast<double>(counter.Lambda(l, 0)), 1.0, 1e-12);
  }
}

TEST(LambdaTest, MatchesEquationFourInClosedFormRegion) {
  // Equation 4: λ_{l,d} = [L-(l-1)(x)] / [L-(l-d-1)(x)], x = (M+N)/2 + 1.
  GapRequirement gap = *GapRequirement::Create(9, 12);
  const std::int64_t L = 1000;
  OffsetCounter counter(L, gap);
  const long double x = (9 + 12) / 2.0L + 1.0L;
  for (std::int64_t l = 2; l <= counter.l1(); l += 7) {
    for (std::int64_t d = 0; d < l && l - d >= 1; d += 3) {
      const long double expected =
          (L - (l - 1) * x) / (L - (l - d - 1) * x);
      EXPECT_NEAR(static_cast<double>(counter.Lambda(l, d)),
                  static_cast<double>(expected), 1e-9)
          << "l=" << l << " d=" << d;
    }
  }
}

TEST(LambdaTest, TransitivityEquationThree) {
  // λ_{l,d1+d2} = λ_{l,d1} * λ_{l-d1,d2}.
  GapRequirement gap = *GapRequirement::Create(2, 5);
  OffsetCounter counter(200, gap);
  for (std::int64_t l : {5, 9, 14}) {
    for (std::int64_t d1 = 0; d1 < l; ++d1) {
      for (std::int64_t d2 = 0; d1 + d2 < l; ++d2) {
        const long double lhs = counter.Lambda(l, d1 + d2);
        const long double rhs =
            counter.Lambda(l, d1) * counter.Lambda(l - d1, d2);
        EXPECT_NEAR(static_cast<double>(lhs), static_cast<double>(rhs), 1e-9)
            << "l=" << l << " d1=" << d1 << " d2=" << d2;
      }
    }
  }
}

TEST(LambdaPrimeTest, AtLeastLambdaAndGrowsWithTighterEm) {
  GapRequirement gap = *GapRequirement::Create(9, 12);  // W = 4
  OffsetCounter counter(1000, gap);
  const std::int64_t m = 3;  // W^m = 64
  for (std::int64_t l : {10, 20}) {
    for (std::int64_t d : {3, 7, 9}) {
      const long double lambda = counter.Lambda(l, d);
      // e_m = W^m gives no tightening at all.
      EXPECT_NEAR(static_cast<double>(counter.LambdaPrime(l, d, m, 64)),
                  static_cast<double>(lambda), 1e-12);
      // Smaller e_m tightens (increases) the factor.
      EXPECT_GE(counter.LambdaPrime(l, d, m, 8), lambda);
      EXPECT_GE(counter.LambdaPrime(l, d, m, 2),
                counter.LambdaPrime(l, d, m, 8));
    }
  }
}

TEST(LambdaPrimeTest, NoTighteningWhenDBelowM) {
  // s = floor(d/m) = 0 when d < m: λ' == λ.
  GapRequirement gap = *GapRequirement::Create(1, 4);
  OffsetCounter counter(100, gap);
  EXPECT_NEAR(static_cast<double>(counter.LambdaPrime(8, 4, 5, 2)),
              static_cast<double>(counter.Lambda(8, 4)), 1e-12);
}

TEST(LambdaPrimeTest, MatchesEquationFiveFactor) {
  // λ'_{l,d} = (W^m / e_m)^s * λ_{l,d}, s = floor(d/m).
  GapRequirement gap = *GapRequirement::Create(9, 12);
  OffsetCounter counter(1000, gap);
  const std::int64_t l = 20, d = 13, m = 5;
  const std::uint64_t em = 100;
  const long double wm = std::pow(4.0L, 5.0L);  // 1024
  const long double expected =
      std::pow(wm / em, 2.0L) * counter.Lambda(l, d);  // s = 2
  EXPECT_NEAR(static_cast<double>(counter.LambdaPrime(l, d, m, em)),
              static_cast<double>(expected), 1e-6);
}

TEST(OffsetCounterTest, HugeLengthsStayFinite) {
  // Case-3 values reach astronomical magnitudes; they must remain finite
  // long doubles (the λ fix for the 2^64-overflow cast regression).
  GapRequirement gap = *GapRequirement::Create(10, 12);
  OffsetCounter counter(100'000, gap);
  const long double big = counter.Count(counter.l1());
  EXPECT_TRUE(std::isfinite(static_cast<long double>(big)));
  EXPECT_GT(big, 0.0L);
  // λ at the extreme d stays in [0,1] and is not spuriously zero.
  const long double lambda = counter.Lambda(counter.l1(), counter.l1() - 3);
  EXPECT_GT(lambda, 0.0L);
  EXPECT_LE(lambda, 1.0L);
}

TEST(BruteForceCounterTest, TinyExamplesByHand) {
  GapRequirement gap = *GapRequirement::Create(1, 2);
  // L=5: offset sequences of length 2 with gap 1..2: pairs (i, j),
  // j - i - 1 in [1,2] -> j in {i+2, i+3}: i=0: j=2,3; i=1: j=3,4;
  // i=2: j=4; i=3,4: none -> 5 total.
  EXPECT_EQ(BruteForceCountOffsetSequences(5, gap, 2), 5u);
  EXPECT_EQ(BruteForceCountOffsetSequences(5, gap, 1), 5u);
  EXPECT_EQ(BruteForceCountOffsetSequences(0, gap, 1), 0u);
  EXPECT_EQ(BruteForceCountOffsetSequences(5, gap, 0), 0u);
}

}  // namespace
}  // namespace pgm
