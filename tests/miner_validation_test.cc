#include <gtest/gtest.h>

#include "core/miner.h"

namespace pgm {
namespace {

Sequence SmallSeq() {
  return *Sequence::FromString("ACGTACGTACGT", Alphabet::Dna());
}

MinerConfig ValidConfig() {
  MinerConfig config;
  config.min_gap = 1;
  config.max_gap = 2;
  config.min_support_ratio = 0.05;
  config.start_length = 2;
  return config;
}

using MinerFn = StatusOr<MiningResult> (*)(const Sequence&, const MinerConfig&);

class MinerValidationTest : public testing::TestWithParam<MinerFn> {};

TEST_P(MinerValidationTest, AcceptsValidConfig) {
  EXPECT_TRUE(GetParam()(SmallSeq(), ValidConfig()).ok());
}

TEST_P(MinerValidationTest, RejectsEmptySequence) {
  Sequence empty = *Sequence::FromString("", Alphabet::Dna());
  EXPECT_FALSE(GetParam()(empty, ValidConfig()).ok());
}

TEST_P(MinerValidationTest, RejectsNegativeMinGap) {
  MinerConfig config = ValidConfig();
  config.min_gap = -1;
  EXPECT_FALSE(GetParam()(SmallSeq(), config).ok());
}

TEST_P(MinerValidationTest, RejectsInvertedGap) {
  MinerConfig config = ValidConfig();
  config.min_gap = 3;
  config.max_gap = 2;
  EXPECT_FALSE(GetParam()(SmallSeq(), config).ok());
}

TEST_P(MinerValidationTest, RejectsZeroSupportRatio) {
  MinerConfig config = ValidConfig();
  config.min_support_ratio = 0.0;
  EXPECT_FALSE(GetParam()(SmallSeq(), config).ok());
}

TEST_P(MinerValidationTest, RejectsSupportRatioAboveOne) {
  MinerConfig config = ValidConfig();
  config.min_support_ratio = 1.5;
  EXPECT_FALSE(GetParam()(SmallSeq(), config).ok());
}

TEST_P(MinerValidationTest, RejectsNonPositiveStartLength) {
  MinerConfig config = ValidConfig();
  config.start_length = 0;
  EXPECT_FALSE(GetParam()(SmallSeq(), config).ok());
}

TEST_P(MinerValidationTest, RejectsMaxLengthBelowStart) {
  MinerConfig config = ValidConfig();
  config.start_length = 3;
  config.max_length = 2;
  EXPECT_FALSE(GetParam()(SmallSeq(), config).ok());
}

TEST_P(MinerValidationTest, SupportRatioOfExactlyOneIsValid) {
  MinerConfig config = ValidConfig();
  config.min_support_ratio = 1.0;
  EXPECT_TRUE(GetParam()(SmallSeq(), config).ok());
}

INSTANTIATE_TEST_SUITE_P(AllMiners, MinerValidationTest,
                         testing::Values(&MineMpp, &MineMppm, &MineEnumeration,
                                         &MineAdaptive));

TEST(MinerValidationTest, AdaptiveRejectsBadIterationKnobs) {
  MinerConfig config = ValidConfig();
  config.initial_n = 0;
  EXPECT_FALSE(MineAdaptive(SmallSeq(), config).ok());
  config = ValidConfig();
  config.max_iterations = 0;
  EXPECT_FALSE(MineAdaptive(SmallSeq(), config).ok());
}

TEST(MinerValidationTest, MppmRejectsBadEmOrder) {
  MinerConfig config = ValidConfig();
  config.em_order = 0;
  EXPECT_FALSE(MineMppm(SmallSeq(), config).ok());
}

TEST(MinerValidationTest, StartLengthBeyondL2YieldsEmptyResult) {
  MinerConfig config = ValidConfig();
  config.start_length = 100;  // far beyond l2 for a 12-char sequence
  StatusOr<MiningResult> result = MineMpp(SmallSeq(), config);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->patterns.empty());
  EXPECT_TRUE(result->level_stats.empty());
}

}  // namespace
}  // namespace pgm
