#include "analysis/case_study.h"

#include <gtest/gtest.h>

#include "datagen/presets.h"

namespace pgm {
namespace {

// Scaled-down Section 7 run: 8 kb fragments instead of 100 kb, with a
// proportionally higher threshold, so the end-to-end pipeline stays fast.
CaseStudyConfig SmallConfig() {
  CaseStudyConfig config;
  config.miner.min_gap = 10;
  config.miner.max_gap = 12;
  config.miner.min_support_ratio = 0.0005;
  config.miner.start_length = 3;
  config.miner.em_order = 4;
  config.fragment_length = 8'000;
  config.report_length = 6;
  return config;
}

TEST(CaseStudyTest, RunsEndToEndOnBacteriaPreset) {
  Sequence genome = *MakeBacteriaLikeGenome(24'000, 77);
  CaseStudyReport report = *RunCaseStudy(genome, SmallConfig());
  ASSERT_EQ(report.fragments.size(), 3u);
  for (const FragmentReport& fragment : report.fragments) {
    EXPECT_EQ(fragment.buckets.length, 6);
    EXPECT_GE(fragment.longest, 0);
    EXPECT_GE(fragment.num_frequent, fragment.buckets.total());
  }
  // Averages are consistent with the per-fragment counts.
  double at = 0;
  for (const FragmentReport& f : report.fragments) {
    at += static_cast<double>(f.buckets.at_only);
  }
  EXPECT_NEAR(report.avg_at_only, at / 3.0, 1e-9);
}

TEST(CaseStudyTest, AtDominanceOnBacteriaPreset) {
  Sequence genome = *MakeBacteriaLikeGenome(16'000, 78);
  CaseStudyReport report = *RunCaseStudy(genome, SmallConfig());
  // The paper's core qualitative finding at reduced scale: A/T-only
  // patterns dominate C/G-heavy ones.
  EXPECT_GT(report.avg_at_only, report.avg_multi_cg);
}

TEST(CaseStudyTest, MaxFragmentsCap) {
  Sequence genome = *MakeBacteriaLikeGenome(40'000, 79);
  CaseStudyConfig config = SmallConfig();
  config.max_fragments = 2;
  CaseStudyReport report = *RunCaseStudy(genome, config);
  EXPECT_EQ(report.fragments.size(), 2u);
}

TEST(CaseStudyTest, TailShorterThanFragmentIsSkipped) {
  Sequence genome = *MakeBacteriaLikeGenome(19'999, 80);
  CaseStudyReport report = *RunCaseStudy(genome, SmallConfig());
  EXPECT_EQ(report.fragments.size(), 2u);
}

TEST(CaseStudyTest, GenomeShorterThanFragmentIsError) {
  Sequence genome = *MakeBacteriaLikeGenome(4'000, 81);
  EXPECT_FALSE(RunCaseStudy(genome, SmallConfig()).ok());
}

TEST(CaseStudyTest, RejectsBadReportLength) {
  Sequence genome = *MakeBacteriaLikeGenome(16'000, 82);
  CaseStudyConfig config = SmallConfig();
  config.report_length = 0;
  EXPECT_FALSE(RunCaseStudy(genome, config).ok());
}

TEST(CaseStudyTest, AggregatesTrackFragmentMaxima) {
  Sequence genome = *MakeBacteriaLikeGenome(24'000, 83);
  CaseStudyReport report = *RunCaseStudy(genome, SmallConfig());
  std::int64_t longest = 0;
  std::int64_t longest_poly_g = 0;
  for (const FragmentReport& f : report.fragments) {
    longest = std::max(longest, f.longest);
    longest_poly_g = std::max(longest_poly_g, f.longest_poly_g);
  }
  EXPECT_EQ(report.longest_overall, longest);
  EXPECT_EQ(report.longest_poly_g_overall, longest_poly_g);
}

}  // namespace
}  // namespace pgm
