#include "analysis/compare.h"

#include <gtest/gtest.h>

namespace pgm {
namespace {

FrequentPattern Fp(const char* shorthand) {
  FrequentPattern fp;
  fp.pattern = *Pattern::Parse(shorthand, Alphabet::Dna());
  fp.support = 1;
  return fp;
}

std::vector<std::string> Shorthands(const std::vector<Pattern>& patterns) {
  std::vector<std::string> out;
  for (const Pattern& p : patterns) out.push_back(p.ToShorthand());
  return out;
}

TEST(CompareTest, RequiresTwoSets) {
  EXPECT_FALSE(ComparePatternSets({}).ok());
  EXPECT_FALSE(ComparePatternSets({{"solo", {Fp("AT")}}}).ok());
}

TEST(CompareTest, CommonAndUnique) {
  NamedPatternSet a{"a", {Fp("AT"), Fp("GG"), Fp("CA")}};
  NamedPatternSet b{"b", {Fp("AT"), Fp("GG"), Fp("TT")}};
  NamedPatternSet c{"c", {Fp("AT"), Fp("CC"), Fp("CA")}};
  std::vector<SetComparison> result = *ComparePatternSets({a, b, c});
  ASSERT_EQ(result.size(), 3u);

  // AT is in all three; GG is shared a&b only; CA shared a&c only.
  EXPECT_EQ(Shorthands(result[0].common), (std::vector<std::string>{"AT"}));
  EXPECT_TRUE(result[0].unique.empty());
  EXPECT_EQ(result[0].total, 3u);

  EXPECT_EQ(Shorthands(result[1].common), (std::vector<std::string>{"AT"}));
  EXPECT_EQ(Shorthands(result[1].unique), (std::vector<std::string>{"TT"}));

  EXPECT_EQ(Shorthands(result[2].unique), (std::vector<std::string>{"CC"}));
}

TEST(CompareTest, DisjointSets) {
  NamedPatternSet a{"a", {Fp("AA")}};
  NamedPatternSet b{"b", {Fp("TT")}};
  std::vector<SetComparison> result = *ComparePatternSets({a, b});
  EXPECT_TRUE(result[0].common.empty());
  EXPECT_EQ(Shorthands(result[0].unique), (std::vector<std::string>{"AA"}));
  EXPECT_EQ(Shorthands(result[1].unique), (std::vector<std::string>{"TT"}));
}

TEST(CompareTest, DuplicateEntriesCountOnce) {
  NamedPatternSet a{"a", {Fp("AT"), Fp("AT")}};
  NamedPatternSet b{"b", {Fp("AT")}};
  std::vector<SetComparison> result = *ComparePatternSets({a, b});
  EXPECT_EQ(result[0].total, 1u);
  EXPECT_EQ(result[0].common.size(), 1u);
}

TEST(JaccardTest, Values) {
  std::vector<FrequentPattern> a = {Fp("AA"), Fp("AT"), Fp("GG")};
  std::vector<FrequentPattern> b = {Fp("AT"), Fp("GG"), Fp("CC")};
  // |∩| = 2, |∪| = 4.
  EXPECT_DOUBLE_EQ(PatternSetJaccard(a, b), 0.5);
  EXPECT_DOUBLE_EQ(PatternSetJaccard(a, a), 1.0);
  EXPECT_DOUBLE_EQ(PatternSetJaccard(a, {}), 0.0);
  EXPECT_DOUBLE_EQ(PatternSetJaccard({}, {}), 1.0);
}

}  // namespace
}  // namespace pgm
