#include "seq/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pgm {
namespace {

TEST(CompositionTest, CountsEverySymbol) {
  Sequence s = *Sequence::FromString("AACGTT", Alphabet::Dna());
  CompositionStats stats = ComputeComposition(s);
  EXPECT_EQ(stats.total, 6u);
  EXPECT_EQ(stats.counts, (std::vector<std::uint64_t>{2, 1, 1, 2}));
  EXPECT_DOUBLE_EQ(stats.frequencies[0], 2.0 / 6);
  EXPECT_DOUBLE_EQ(stats.frequencies[1], 1.0 / 6);
}

TEST(CompositionTest, EmptySequence) {
  Sequence s = *Sequence::FromString("", Alphabet::Dna());
  CompositionStats stats = ComputeComposition(s);
  EXPECT_EQ(stats.total, 0u);
  for (double f : stats.frequencies) EXPECT_EQ(f, 0.0);
}

TEST(GcContentTest, ComputesFraction) {
  Sequence s = *Sequence::FromString("GGCCAATT", Alphabet::Dna());
  EXPECT_DOUBLE_EQ(*GcContent(s), 0.5);
  Sequence all_at = *Sequence::FromString("ATATAT", Alphabet::Dna());
  EXPECT_DOUBLE_EQ(*GcContent(all_at), 0.0);
  Sequence all_gc = *Sequence::FromString("GCGC", Alphabet::Dna());
  EXPECT_DOUBLE_EQ(*GcContent(all_gc), 1.0);
}

TEST(GcContentTest, EmptySequenceIsZero) {
  Sequence s = *Sequence::FromString("", Alphabet::Dna());
  EXPECT_DOUBLE_EQ(*GcContent(s), 0.0);
}

TEST(GcContentTest, FailsWithoutGC) {
  Alphabet binary = *Alphabet::Create("01");
  Sequence s = *Sequence::FromString("0101", binary);
  StatusOr<double> gc = GcContent(s);
  ASSERT_FALSE(gc.ok());
  EXPECT_EQ(gc.status().code(), StatusCode::kFailedPrecondition);
}

TEST(KmerTest, CountsOverlappingKmers) {
  Sequence s = *Sequence::FromString("AAAA", Alphabet::Dna());
  auto counts = *CountKmers(s, 2);
  EXPECT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts["AA"], 3u);
}

TEST(KmerTest, DistinctKmers) {
  Sequence s = *Sequence::FromString("ACGTA", Alphabet::Dna());
  auto counts = *CountKmers(s, 3);
  EXPECT_EQ(counts["ACG"], 1u);
  EXPECT_EQ(counts["CGT"], 1u);
  EXPECT_EQ(counts["GTA"], 1u);
  EXPECT_EQ(counts.size(), 3u);
}

TEST(KmerTest, KLargerThanSequence) {
  Sequence s = *Sequence::FromString("AC", Alphabet::Dna());
  EXPECT_TRUE(CountKmers(s, 3)->empty());
}

TEST(KmerTest, KZeroIsError) {
  Sequence s = *Sequence::FromString("AC", Alphabet::Dna());
  EXPECT_FALSE(CountKmers(s, 0).ok());
}

TEST(KmerTest, KEqualsLength) {
  Sequence s = *Sequence::FromString("ACG", Alphabet::Dna());
  auto counts = *CountKmers(s, 3);
  EXPECT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts["ACG"], 1u);
}

TEST(EntropyTest, UniformCompositionIsTwoBits) {
  Sequence s = *Sequence::FromString("ACGT", Alphabet::Dna());
  EXPECT_NEAR(CompositionEntropy(s), 2.0, 1e-12);
}

TEST(EntropyTest, HomopolymerIsZeroBits) {
  Sequence s = *Sequence::FromString("AAAA", Alphabet::Dna());
  EXPECT_DOUBLE_EQ(CompositionEntropy(s), 0.0);
}

TEST(EntropyTest, BiasedIsBetween) {
  Sequence s = *Sequence::FromString("AAAC", Alphabet::Dna());
  double h = CompositionEntropy(s);
  EXPECT_GT(h, 0.0);
  EXPECT_LT(h, 2.0);
  // H(3/4, 1/4) exactly.
  double expected = -(0.75 * std::log2(0.75) + 0.25 * std::log2(0.25));
  EXPECT_NEAR(h, expected, 1e-12);
}

TEST(EntropyTest, EmptySequenceIsZero) {
  Sequence s = *Sequence::FromString("", Alphabet::Dna());
  EXPECT_DOUBLE_EQ(CompositionEntropy(s), 0.0);
}

}  // namespace
}  // namespace pgm
