#include "util/flags.h"

#include <gtest/gtest.h>

#include <vector>

namespace pgm {
namespace {

// Builds a mutable argv from string literals.
class Args {
 public:
  explicit Args(std::vector<std::string> args) : storage_(std::move(args)) {
    for (std::string& s : storage_) argv_.push_back(s.data());
  }
  int argc() { return static_cast<int>(argv_.size()); }
  char** argv() { return argv_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> argv_;
};

TEST(FlagsTest, ParsesEqualsForm) {
  FlagSet flags("test");
  std::int64_t n = 0;
  double d = 0;
  std::string s;
  flags.AddInt64("n", &n, "an int");
  flags.AddDouble("d", &d, "a double");
  flags.AddString("s", &s, "a string");
  Args args({"prog", "--n=5", "--d=1.5", "--s=hello"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(n, 5);
  EXPECT_DOUBLE_EQ(d, 1.5);
  EXPECT_EQ(s, "hello");
}

TEST(FlagsTest, ParsesSpaceForm) {
  FlagSet flags("test");
  std::int64_t n = 0;
  flags.AddInt64("n", &n, "an int");
  Args args({"prog", "--n", "42"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(n, 42);
}

TEST(FlagsTest, DefaultsSurviveWhenUnset) {
  FlagSet flags("test");
  std::int64_t n = 7;
  flags.AddInt64("n", &n, "an int");
  Args args({"prog"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(n, 7);
}

TEST(FlagsTest, BareBoolFlagSetsTrue) {
  FlagSet flags("test");
  bool b = false;
  flags.AddBool("verbose", &b, "a bool");
  Args args({"prog", "--verbose"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_TRUE(b);
}

TEST(FlagsTest, BoolAcceptsExplicitValues) {
  FlagSet flags("test");
  bool b = true;
  flags.AddBool("verbose", &b, "a bool");
  Args args({"prog", "--verbose=false"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_FALSE(b);

  bool b2 = false;
  FlagSet flags2("test");
  flags2.AddBool("verbose", &b2, "a bool");
  Args args2({"prog", "--verbose=1"});
  ASSERT_TRUE(flags2.Parse(args2.argc(), args2.argv()).ok());
  EXPECT_TRUE(b2);
}

TEST(FlagsTest, RejectsBadBool) {
  FlagSet flags("test");
  bool b = false;
  flags.AddBool("verbose", &b, "a bool");
  Args args({"prog", "--verbose=banana"});
  EXPECT_FALSE(flags.Parse(args.argc(), args.argv()).ok());
}

TEST(FlagsTest, RejectsUnknownFlag) {
  FlagSet flags("test");
  Args args({"prog", "--mystery=1"});
  Status status = flags.Parse(args.argc(), args.argv());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("mystery"), std::string::npos);
}

TEST(FlagsTest, RejectsMissingValue) {
  FlagSet flags("test");
  std::int64_t n = 0;
  flags.AddInt64("n", &n, "an int");
  Args args({"prog", "--n"});
  EXPECT_FALSE(flags.Parse(args.argc(), args.argv()).ok());
}

TEST(FlagsTest, RejectsBadInteger) {
  FlagSet flags("test");
  std::int64_t n = 0;
  flags.AddInt64("n", &n, "an int");
  Args args({"prog", "--n=abc"});
  EXPECT_FALSE(flags.Parse(args.argc(), args.argv()).ok());
}

TEST(FlagsTest, CollectsPositionalArgs) {
  FlagSet flags("test");
  std::int64_t n = 0;
  flags.AddInt64("n", &n, "an int");
  Args args({"prog", "input.txt", "--n=1", "output.txt"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(flags.positional_args(),
            (std::vector<std::string>{"input.txt", "output.txt"}));
}

TEST(FlagsTest, HelpReturnsUsageAsNotFound) {
  FlagSet flags("my program");
  std::int64_t n = 3;
  flags.AddInt64("n", &n, "an int");
  Args args({"prog", "--help"});
  Status status = flags.Parse(args.argc(), args.argv());
  ASSERT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_NE(status.message().find("my program"), std::string::npos);
  EXPECT_NE(status.message().find("--n"), std::string::npos);
  EXPECT_NE(status.message().find("default: 3"), std::string::npos);
}

TEST(FlagsTest, UsageListsAllFlagsWithDefaults) {
  FlagSet flags("desc");
  bool b = true;
  std::string s = "abc";
  flags.AddBool("flag_b", &b, "bool flag");
  flags.AddString("flag_s", &s, "string flag");
  std::string usage = flags.Usage();
  EXPECT_NE(usage.find("flag_b"), std::string::npos);
  EXPECT_NE(usage.find("default: true"), std::string::npos);
  EXPECT_NE(usage.find("default: abc"), std::string::npos);
}

}  // namespace
}  // namespace pgm
