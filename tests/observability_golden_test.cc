// Golden-file tests for the observability exports: the metrics and trace
// JSON for a small fixed run are pinned byte-for-byte, so any schema drift
// (key renames, ordering changes, format changes) fails loudly here before
// it breaks downstream consumers. The same run is repeated at several
// thread counts to pin the determinism contract: the exports must be
// byte-identical because every recording call happens in the engines'
// serial sections.

#include <gtest/gtest.h>

#include <string>

#include "core/miner.h"
#include "core/trace.h"
#include "seq/sequence.h"
#include "util/metrics.h"

namespace pgm {
namespace {

Sequence GoldenSequence() {
  std::string text;
  for (int i = 0; i < 4; ++i) text += "AACCGGTTACGTAGCT";
  return *Sequence::FromString(text, Alphabet::Dna());
}

MinerConfig GoldenConfig() {
  MinerConfig config;
  config.min_gap = 0;
  config.max_gap = 2;
  config.min_support_ratio = 0.05;
  config.start_length = 1;
  config.max_length = 4;
  config.em_order = 2;
  return config;
}

struct Export {
  std::string metrics_json;
  std::string trace_json;
};

Export RunGolden(std::int64_t threads) {
  MetricsRegistry metrics;
  MiningTrace trace;
  MiningObserver observer;
  observer.metrics = &metrics;
  observer.trace = &trace;
  MinerConfig config = GoldenConfig();
  config.threads = threads;
  config.observer = &observer;
  StatusOr<MiningResult> result = MineMppm(GoldenSequence(), config);
  EXPECT_TRUE(result.ok());
  return {metrics.ToJson() + "\n", trace.ToJson() + "\n"};
}

// Pinned exports for the run above (regenerate by printing the actual
// values when the schema changes deliberately — the test failure output
// shows them in full).
extern const char kGoldenMetrics[];
extern const char kGoldenTrace[];

TEST(ObservabilityGoldenTest, MetricsJsonMatchesGolden) {
  EXPECT_EQ(RunGolden(1).metrics_json, kGoldenMetrics);
}

TEST(ObservabilityGoldenTest, TraceJsonMatchesGolden) {
  EXPECT_EQ(RunGolden(1).trace_json, kGoldenTrace);
}

TEST(ObservabilityGoldenTest, ExportsAreByteIdenticalAcrossThreadCounts) {
  const Export reference = RunGolden(1);
  for (std::int64_t threads : {std::int64_t{2}, std::int64_t{8}}) {
    const Export run = RunGolden(threads);
    EXPECT_EQ(run.metrics_json, reference.metrics_json)
        << "threads=" << threads;
    EXPECT_EQ(run.trace_json, reference.trace_json) << "threads=" << threads;
  }
}

TEST(ObservabilityGoldenTest, MetricsKeysAreSorted) {
  const std::string json = RunGolden(1).metrics_json;
  // Spot-check lexicographic ordering of the counter section; the zero
  // padding in per-level keys makes lexicographic order the numeric order.
  EXPECT_LT(json.find("\"mine.candidates.evaluated\""),
            json.find("\"mine.candidates.frequent\""));
  EXPECT_LT(json.find("\"mine.candidates.generated\""),
            json.find("\"mine.candidates.pruned\""));
  EXPECT_LT(json.find("\"mine.level.00001.candidates\""),
            json.find("\"mine.level.00002.candidates\""));
  EXPECT_LT(json.find("\"mine.levels.started\""), json.find("\"mine.runs\""));
}

const char kGoldenMetrics[] =
    "{\n"
    "  \"counters\": {\n"
    "    \"mine.candidates.evaluated\": 42,\n"
    "    \"mine.candidates.frequent\": 15,\n"
    "    \"mine.candidates.generated\": 42,\n"
    "    \"mine.candidates.pruned\": 26,\n"
    "    \"mine.candidates.retained\": 16,\n"
    "    \"mine.level.00001.candidates\": 4,\n"
    "    \"mine.level.00001.evaluated\": 4,\n"
    "    \"mine.level.00001.frequent\": 4,\n"
    "    \"mine.level.00001.retained\": 4,\n"
    "    \"mine.level.00002.candidates\": 16,\n"
    "    \"mine.level.00002.evaluated\": 16,\n"
    "    \"mine.level.00002.frequent\": 9,\n"
    "    \"mine.level.00002.retained\": 9,\n"
    "    \"mine.level.00003.candidates\": 20,\n"
    "    \"mine.level.00003.evaluated\": 20,\n"
    "    \"mine.level.00003.frequent\": 2,\n"
    "    \"mine.level.00003.retained\": 3,\n"
    "    \"mine.level.00004.candidates\": 2,\n"
    "    \"mine.level.00004.evaluated\": 2,\n"
    "    \"mine.levels.completed\": 4,\n"
    "    \"mine.levels.started\": 4,\n"
    "    \"mine.patterns.emitted\": 15,\n"
    "    \"mine.runs\": 1\n"
    "  },\n"
    "  \"gauges\": {\n"
    "    \"mine.last.em\": 4,\n"
    "    \"mine.last.estimated_n\": 6,\n"
    "    \"mine.last.guaranteed_complete_up_to\": 6,\n"
    "    \"mine.last.longest_frequent_length\": 3,\n"
    "    \"mine.last.n_used\": 6\n"
    "  },\n"
    "  \"histograms\": {\n"
    // pil_bytes reports the exact rows of each candidate's arena span
    // (span.len * sizeof(PilEntry)), not the old per-vector capacity.
    "    \"mine.candidate.pil_bytes\": {\"bounds\": [64, 256, 1024, 4096, "
    "16384, 65536, 262144, 1048576, 4194304, 16777216, 67108864], "
    "\"buckets\": [4, 38, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0], \"count\": 42, "
    "\"sum\": 7536},\n"
    "    \"mine.candidate.support\": {\"bounds\": [1, 2, 4, 8, 16, 32, 64, "
    "128, 256, 512, 1024, 4096, 16384, 65536, 262144, 1048576], "
    "\"buckets\": [0, 0, 4, 6, 21, 7, 3, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0], "
    "\"count\": 42, \"sum\": 685}\n"
    "  }\n"
    "}\n";

const char kGoldenTrace[] =
    "{\n"
    "  \"events\": [\n"
    "    {\"kind\": \"run_start\", \"algorithm\": \"mppm\", "
    "\"kernel_tier\": \"auto\"},\n"
    "    {\"kind\": \"estimate\", \"em\": 4, \"estimated_n\": 6},\n"
    "    {\"kind\": \"level_start\", \"level\": 1, \"candidates\": 4, "
    "\"lambda\": 0.84375, \"full_threshold\": 3.2000000000000002, "
    "\"relaxed_threshold\": 2.7000000000000002},\n"
    "    {\"kind\": \"level_end\", \"level\": 1, \"candidates\": 4, "
    "\"evaluated\": 4, \"frequent\": 4, \"retained\": 4, \"pruned\": 0, "
    "\"completed\": true},\n"
    "    {\"kind\": \"level_start\", \"level\": 2, \"candidates\": 16, "
    "\"lambda\": 0.87096774193548387, \"full_threshold\": "
    "9.3000000000000007, \"relaxed_threshold\": 8.0999999999999996},\n"
    "    {\"kind\": \"level_end\", \"level\": 2, \"candidates\": 16, "
    "\"evaluated\": 16, \"frequent\": 9, \"retained\": 9, \"pruned\": 7, "
    "\"completed\": true},\n"
    "    {\"kind\": \"level_start\", \"level\": 3, \"candidates\": 20, "
    "\"lambda\": 0.90000000000000002, \"full_threshold\": 27, "
    "\"relaxed_threshold\": 24.300000000000001},\n"
    "    {\"kind\": \"level_end\", \"level\": 3, \"candidates\": 20, "
    "\"evaluated\": 20, \"frequent\": 2, \"retained\": 3, \"pruned\": 17, "
    "\"completed\": true},\n"
    "    {\"kind\": \"level_start\", \"level\": 4, \"candidates\": 2, "
    "\"lambda\": 0.93103448275862066, \"full_threshold\": "
    "78.300000000000011, \"relaxed_threshold\": 72.900000000000006},\n"
    "    {\"kind\": \"level_end\", \"level\": 4, \"candidates\": 2, "
    "\"evaluated\": 2, \"frequent\": 0, \"retained\": 0, \"pruned\": 2, "
    "\"completed\": true},\n"
    "    {\"kind\": \"run_end\", \"reason\": \"completed\", \"patterns\": "
    "15, \"levels\": 4}\n"
    "  ]\n"
    "}\n";

}  // namespace
}  // namespace pgm
