#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/miner.h"
#include "core/verifier.h"
#include "datagen/generators.h"
#include "util/random.h"

namespace pgm {
namespace {

Sequence RandomSeq(std::size_t length, std::uint64_t seed) {
  Rng rng(seed);
  return *UniformRandomSequence(length, Alphabet::Dna(), rng);
}

MinerConfig BaseConfig() {
  MinerConfig config;
  config.min_gap = 1;
  config.max_gap = 3;
  config.min_support_ratio = 0.01;
  config.start_length = 1;
  return config;
}

TEST(MppTest, ReportedSupportsAreExact) {
  Sequence s = RandomSeq(80, 1);
  MinerConfig config = BaseConfig();
  GapRequirement gap = *GapRequirement::Create(config.min_gap, config.max_gap);
  MiningResult result = *MineMpp(s, config);
  ASSERT_FALSE(result.patterns.empty());
  for (const FrequentPattern& fp : result.patterns) {
    SupportInfo direct = *CountSupport(s, fp.pattern, gap);
    EXPECT_EQ(fp.support, direct.count) << fp.pattern.ToShorthand();
    EXPECT_FALSE(fp.saturated);
    EXPECT_GT(fp.support_ratio, 0.0);
    EXPECT_LE(fp.support_ratio, 1.0);
  }
}

TEST(MppTest, ResultIsSortedAndUnique) {
  Sequence s = RandomSeq(100, 2);
  MiningResult result = *MineMpp(s, BaseConfig());
  std::set<std::string> seen;
  std::size_t previous_length = 0;
  for (const FrequentPattern& fp : result.patterns) {
    EXPECT_GE(fp.pattern.length(), previous_length);
    previous_length = fp.pattern.length();
    EXPECT_TRUE(seen.insert(fp.pattern.ToShorthand()).second)
        << "duplicate " << fp.pattern.ToShorthand();
  }
}

TEST(MppTest, WorstCaseClampsNToL1) {
  Sequence s = RandomSeq(60, 3);
  MinerConfig config = BaseConfig();
  config.user_n = -1;
  MiningResult result = *MineMpp(s, config);
  GapRequirement gap = *GapRequirement::Create(1, 3);
  EXPECT_EQ(result.n_used, gap.MaxGuaranteedLength(60));
  EXPECT_EQ(result.guaranteed_complete_up_to, result.n_used);
}

TEST(MppTest, OversizedUserNClampsToL1) {
  Sequence s = RandomSeq(60, 4);
  MinerConfig config = BaseConfig();
  config.user_n = 10'000;
  MiningResult result = *MineMpp(s, config);
  GapRequirement gap = *GapRequirement::Create(1, 3);
  EXPECT_EQ(result.n_used, gap.MaxGuaranteedLength(60));
}

TEST(MppTest, SmallUserNIsKept) {
  Sequence s = RandomSeq(60, 5);
  MinerConfig config = BaseConfig();
  config.user_n = 4;
  MiningResult result = *MineMpp(s, config);
  EXPECT_EQ(result.n_used, 4);
  EXPECT_EQ(result.guaranteed_complete_up_to, 4);
}

TEST(MppTest, WorstCaseFindsSupersetOfSmallN) {
  // With a smaller n MPP is complete only up to n; the worst case must
  // find at least as many patterns.
  Sequence s = RandomSeq(120, 6);
  MinerConfig small_n = BaseConfig();
  small_n.user_n = 2;
  MinerConfig worst = BaseConfig();
  worst.user_n = -1;
  MiningResult small_result = *MineMpp(s, small_n);
  MiningResult worst_result = *MineMpp(s, worst);
  std::set<std::string> worst_set;
  for (const FrequentPattern& fp : worst_result.patterns) {
    worst_set.insert(fp.pattern.ToShorthand());
  }
  for (const FrequentPattern& fp : small_result.patterns) {
    EXPECT_TRUE(worst_set.count(fp.pattern.ToShorthand()))
        << fp.pattern.ToShorthand();
  }
  EXPECT_GE(worst_result.patterns.size(), small_result.patterns.size());
}

TEST(MppTest, LevelStatsAreConsistent) {
  Sequence s = RandomSeq(90, 7);
  MiningResult result = *MineMpp(s, BaseConfig());
  ASSERT_FALSE(result.level_stats.empty());
  std::uint64_t total = 0;
  std::int64_t previous_length = 0;
  for (const LevelStats& stats : result.level_stats) {
    EXPECT_GT(stats.length, previous_length);
    previous_length = stats.length;
    // |L_l| <= |L̂_l| <= |C_l| (λ <= 1 relaxes the threshold).
    EXPECT_LE(stats.num_frequent, stats.num_retained);
    EXPECT_LE(stats.num_retained, stats.num_candidates);
    total += stats.num_candidates;
  }
  EXPECT_EQ(result.total_candidates, total);
  // First level enumerates all |Σ|^start_length candidates.
  EXPECT_EQ(result.level_stats.front().num_candidates, 4u);
}

TEST(MppTest, FrequentCountsMatchLevelStats) {
  Sequence s = RandomSeq(90, 8);
  MiningResult result = *MineMpp(s, BaseConfig());
  for (const LevelStats& stats : result.level_stats) {
    std::uint64_t count = 0;
    for (const FrequentPattern& fp : result.patterns) {
      if (static_cast<std::int64_t>(fp.pattern.length()) == stats.length) {
        ++count;
      }
    }
    EXPECT_EQ(count, stats.num_frequent) << "level " << stats.length;
  }
}

TEST(MppTest, MaxLengthCapsMining) {
  Sequence s = RandomSeq(100, 9);
  MinerConfig config = BaseConfig();
  config.max_length = 3;
  MiningResult result = *MineMpp(s, config);
  EXPECT_LE(result.longest_frequent_length, 3);
  for (const LevelStats& stats : result.level_stats) {
    EXPECT_LE(stats.length, 3);
  }
}

TEST(MppTest, StartLengthThreeSkipsShortPatterns) {
  Sequence s = RandomSeq(100, 10);
  MinerConfig config = BaseConfig();
  config.start_length = 3;
  MiningResult result = *MineMpp(s, config);
  for (const FrequentPattern& fp : result.patterns) {
    EXPECT_GE(fp.pattern.length(), 3u);
  }
  EXPECT_EQ(result.level_stats.front().num_candidates, 64u);
}

TEST(MppTest, HighThresholdYieldsNothing) {
  Sequence s = RandomSeq(50, 11);
  MinerConfig config = BaseConfig();
  config.min_support_ratio = 1.0;
  config.start_length = 2;
  MiningResult result = *MineMpp(s, config);
  // No length-2 pattern can match every offset sequence of a random
  // sequence over a 4-letter alphabet.
  EXPECT_TRUE(result.patterns.empty());
  EXPECT_EQ(result.longest_frequent_length, 0);
}

TEST(MppTest, HomopolymerSequenceSinglePatternPerLevel) {
  // S = A^30: the only patterns with support are all-A, and their ratio is
  // exactly 1 at every level.
  Sequence s = *Sequence::FromString(std::string(30, 'A'), Alphabet::Dna());
  MinerConfig config = BaseConfig();
  config.min_support_ratio = 0.99;
  MiningResult result = *MineMpp(s, config);
  ASSERT_FALSE(result.patterns.empty());
  for (const FrequentPattern& fp : result.patterns) {
    for (std::size_t i = 0; i < fp.pattern.length(); ++i) {
      EXPECT_EQ(fp.pattern.CharAt(i), 'A');
    }
    EXPECT_NEAR(fp.support_ratio, 1.0, 1e-9);
  }
  GapRequirement gap = *GapRequirement::Create(1, 3);
  EXPECT_EQ(result.longest_frequent_length, gap.MaxPossibleLength(30));
}

TEST(MppTest, BinaryAlphabet) {
  Alphabet binary = *Alphabet::Create("01");
  Rng rng(12);
  Sequence s = *UniformRandomSequence(60, binary, rng);
  MinerConfig config = BaseConfig();
  MiningResult result = *MineMpp(s, config);
  EXPECT_FALSE(result.patterns.empty());
  EXPECT_EQ(result.level_stats.front().num_candidates, 2u);
}

TEST(MppTest, TimingFieldsPopulated) {
  Sequence s = RandomSeq(60, 13);
  MiningResult result = *MineMpp(s, BaseConfig());
  EXPECT_GE(result.mining_seconds, 0.0);
  EXPECT_EQ(result.total_seconds, result.mining_seconds);
  EXPECT_EQ(result.em, 0u);           // MPP does not compute e_m
  EXPECT_EQ(result.estimated_n, -1);  // nor an estimate
}

}  // namespace
}  // namespace pgm
