#include "util/string_util.h"

#include <gtest/gtest.h>

#include "util/saturating.h"

namespace pgm {
namespace {

TEST(SplitTest, BasicSplit) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, AdjacentDelimitersYieldEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
}

TEST(SplitTest, LeadingAndTrailingDelimiters) {
  EXPECT_EQ(Split(",a,", ','), (std::vector<std::string>{"", "a", ""}));
}

TEST(SplitTest, EmptyInputIsSingleEmptyField) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(SplitJoinTest, RoundTrip) {
  const std::string input = "x|y||z";
  EXPECT_EQ(Join(Split(input, '|'), "|"), input);
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim("hello"), "hello");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("a b"), "a b");
}

TEST(CaseTest, ToUpperAndLowerAreAsciiOnly) {
  EXPECT_EQ(ToUpper("acgt123"), "ACGT123");
  EXPECT_EQ(ToLower("ACGT123"), "acgt123");
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(StrFormat("no args"), "no args");
}

TEST(StrFormatTest, LongOutput) {
  std::string long_arg(5000, 'y');
  std::string formatted = StrFormat("[%s]", long_arg.c_str());
  EXPECT_EQ(formatted.size(), 5002u);
  EXPECT_EQ(formatted.front(), '[');
  EXPECT_EQ(formatted.back(), ']');
}

TEST(ParseInt64Test, ParsesValidIntegers) {
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64("-17"), -17);
  EXPECT_EQ(*ParseInt64("  99  "), 99);
  EXPECT_EQ(*ParseInt64("0"), 0);
}

TEST(ParseInt64Test, RejectsGarbage) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("x12").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());
  EXPECT_FALSE(ParseInt64("  ").ok());
}

TEST(ParseInt64Test, RejectsOverflow) {
  StatusOr<std::int64_t> result = ParseInt64("99999999999999999999999");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(ParseDoubleTest, ParsesValidDoubles) {
  EXPECT_DOUBLE_EQ(*ParseDouble("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-2e3"), -2000.0);
  EXPECT_DOUBLE_EQ(*ParseDouble(" 0.003 "), 0.003);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("1.5z").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
}

TEST(ThousandsTest, InsertsSeparators) {
  EXPECT_EQ(WithThousandsSeparators(0), "0");
  EXPECT_EQ(WithThousandsSeparators(999), "999");
  EXPECT_EQ(WithThousandsSeparators(1000), "1,000");
  EXPECT_EQ(WithThousandsSeparators(1234567), "1,234,567");
  EXPECT_EQ(WithThousandsSeparators(1000000000ULL), "1,000,000,000");
}

TEST(FormatCountTest, SmallCountsExact) {
  EXPECT_EQ(FormatCount(1234), "1,234");
}

TEST(FormatCountTest, HugeCountsScientific) {
  EXPECT_EQ(FormatCount(100'000'000'000ULL), "1.000e+11");
}

TEST(FormatCountTest, SaturatedCountsFlagged) {
  EXPECT_EQ(FormatCount(kSaturatedCount), "2^64-sat");
}

}  // namespace
}  // namespace pgm
