// The central correctness property: on any input, MPP (worst case), MPPm,
// and the adaptive miner
//   (a) are COMPLETE up to the guarantee horizon l1 — they report exactly
//       the frequent patterns the pruning-free enumeration baseline
//       defines for lengths <= l1 (the paper: "MPP can only guarantee that
//       all frequent patterns of lengths <= n are discovered", and the
//       worst case clamps n to l1), and
//   (b) are SOUND at every length — everything they report is genuinely
//       frequent with an exact support.
// Beyond l1 the miners are best-effort, so enumeration may legitimately
// know more.

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "core/miner.h"
#include "core/verifier.h"
#include "datagen/generators.h"
#include "datagen/planting.h"
#include "util/random.h"

namespace pgm {
namespace {

// (alphabet symbols, L, N, M, rho, seed)
using SweepParam =
    std::tuple<const char*, std::size_t, std::int64_t, std::int64_t, double,
               std::uint64_t>;

class CrossValidationSweep : public testing::TestWithParam<SweepParam> {};

std::map<std::string, std::uint64_t> ToMap(const MiningResult& result,
                                           std::size_t max_length = 0) {
  std::map<std::string, std::uint64_t> map;
  for (const FrequentPattern& fp : result.patterns) {
    if (max_length != 0 && fp.pattern.length() > max_length) continue;
    map[fp.pattern.ToShorthand()] = fp.support;
  }
  return map;
}

// Completeness up to `horizon` (against the enumeration reference, which
// must itself have been run at least that deep) + soundness at every
// length (against the independent DP verifier, so no enumeration of deep
// levels is ever needed).
void ExpectAgreement(const MiningResult& miner_result,
                     const MiningResult& enumeration_result,
                     std::size_t horizon, const Sequence& s,
                     const GapRequirement& gap, double rho,
                     const char* label) {
  EXPECT_EQ(ToMap(miner_result, horizon), ToMap(enumeration_result, horizon))
      << label << " disagrees with enumeration below the guarantee horizon";
  OffsetCounter counter(static_cast<std::int64_t>(s.size()), gap);
  for (const FrequentPattern& fp : miner_result.patterns) {
    const std::uint64_t direct = CountSupport(s, fp.pattern, gap)->count;
    EXPECT_EQ(direct, fp.support)
        << label << " support mismatch for " << fp.pattern.ToShorthand();
    const long double n_l =
        counter.Count(static_cast<std::int64_t>(fp.pattern.length()));
    EXPECT_GE(static_cast<long double>(direct),
              static_cast<long double>(rho) * n_l)
        << label << " reported a non-frequent pattern "
        << fp.pattern.ToShorthand();
  }
}

TEST_P(CrossValidationSweep, MinersCompleteToL1AndSoundEverywhere) {
  const auto [symbols, length, min_gap, max_gap, rho, seed] = GetParam();
  Alphabet alphabet = *Alphabet::Create(symbols);
  Rng rng(seed);
  Sequence s = *UniformRandomSequence(length, alphabet, rng);
  GapRequirement gap = *GapRequirement::Create(min_gap, max_gap);
  // Completeness is checked up to min(l1, 8): enumeration past |Σ|^8
  // patterns per level is intractable by design (that is the paper's whole
  // point), and the pruning behavior under test is fully exercised well
  // below it.
  const std::size_t horizon = std::min<std::size_t>(
      8, static_cast<std::size_t>(gap.MaxGuaranteedLength(length)));

  MinerConfig config;
  config.min_gap = min_gap;
  config.max_gap = max_gap;
  config.min_support_ratio = rho;
  config.start_length = 1;
  config.em_order = 2;

  MinerConfig enum_config = config;
  enum_config.max_length = static_cast<std::int64_t>(horizon);
  MiningResult reference = *MineEnumeration(s, enum_config);

  MinerConfig worst = config;
  worst.user_n = -1;
  ExpectAgreement(*MineMpp(s, worst), reference, horizon, s, gap, rho,
                  "MPP worst case");
  ExpectAgreement(*MineMppm(s, config), reference, horizon, s, gap, rho,
                  "MPPm");
  // The adaptive loop stops when the longest pattern found is covered by
  // its current n; frequent patterns longer than that final n can be
  // missed without triggering a refinement (the heuristic's documented
  // blind spot), so its horizon is n_used, not l1.
  MinerConfig adaptive = config;
  adaptive.initial_n = 2;
  MiningResult adaptive_result = *MineAdaptive(s, adaptive);
  ExpectAgreement(adaptive_result, reference,
                  std::min(horizon,
                           static_cast<std::size_t>(adaptive_result.n_used)),
                  s, gap, rho, "Adaptive");

  // The enumeration supports themselves are verified against the direct DP
  // counter.
  for (const FrequentPattern& fp : reference.patterns) {
    EXPECT_EQ(fp.support, CountSupport(s, fp.pattern, gap)->count)
        << fp.pattern.ToShorthand();
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomInputs, CrossValidationSweep,
    testing::Values(
        SweepParam{"ACGT", 40, 1, 2, 0.02, 1001},
        SweepParam{"ACGT", 60, 0, 1, 0.05, 1002},
        SweepParam{"ACGT", 60, 2, 4, 0.01, 1003},
        SweepParam{"ACGT", 80, 1, 3, 0.005, 1004},
        SweepParam{"AB", 50, 1, 2, 0.05, 1005},
        SweepParam{"AB", 70, 0, 2, 0.1, 1006},
        SweepParam{"ABC", 55, 2, 3, 0.02, 1007},
        SweepParam{"ACGT", 45, 3, 3, 0.01, 1008},   // rigid gap, W = 1
        SweepParam{"ACGT", 64, 0, 0, 0.02, 1009},   // adjacent characters
        SweepParam{"ACGT", 33, 5, 8, 0.02, 1010},   // wide gap, short seq
        SweepParam{"ACGT", 100, 2, 3, 0.008, 1011},
        SweepParam{"AB", 36, 4, 6, 0.03, 1012},
        SweepParam{"ABCDE", 48, 1, 2, 0.01, 1013},  // 5-letter alphabet
        SweepParam{"ACGT", 25, 0, 6, 0.05, 1014},   // gap wider than N
        SweepParam{"ACGT", 90, 1, 1, 0.015, 1015}));  // rigid non-zero gap

TEST(CrossValidationTest, PlantedRunInput) {
  // Dense planted structure (the hard case for pruning soundness: high
  // supports concentrated on few patterns).
  Rng rng(2001);
  Sequence s = *UniformRandomSequence(90, Alphabet::Dna(), rng);
  s = *PlantNoisyTandemRun(s, "AT", 10, 30, 0.95, rng);
  GapRequirement gap = *GapRequirement::Create(1, 3);
  const std::size_t horizon = std::min<std::size_t>(
      8, static_cast<std::size_t>(gap.MaxGuaranteedLength(90)));
  MinerConfig config;
  config.min_gap = 1;
  config.max_gap = 3;
  config.min_support_ratio = 0.002;
  config.start_length = 1;
  config.em_order = 3;
  MinerConfig enum_config = config;
  enum_config.max_length = static_cast<std::int64_t>(horizon);
  MiningResult reference = *MineEnumeration(s, enum_config);
  ExpectAgreement(*MineMppm(s, config), reference, horizon, s, gap,
                  config.min_support_ratio, "MPPm");
  MinerConfig worst = config;
  worst.user_n = -1;
  ExpectAgreement(*MineMpp(s, worst), reference, horizon, s, gap,
                  config.min_support_ratio, "MPP worst case");
}

TEST(CrossValidationTest, StartLengthThreeSubsetsAgree) {
  // With the paper's start_length = 3, the result must equal the
  // enumeration result restricted to lengths in [3, horizon].
  Rng rng(2002);
  Sequence s = *UniformRandomSequence(70, Alphabet::Dna(), rng);
  GapRequirement gap = *GapRequirement::Create(1, 2);
  const std::size_t horizon = std::min<std::size_t>(
      8, static_cast<std::size_t>(gap.MaxGuaranteedLength(70)));
  MinerConfig config;
  config.min_gap = 1;
  config.max_gap = 2;
  config.min_support_ratio = 0.01;
  config.start_length = 1;
  config.em_order = 2;
  config.max_length = static_cast<std::int64_t>(horizon);
  auto full = ToMap(*MineEnumeration(s, config), horizon);
  std::map<std::string, std::uint64_t> expected;
  for (const auto& [shorthand, support] : full) {
    if (shorthand.size() >= 3) expected[shorthand] = support;
  }
  MinerConfig from3 = config;
  from3.start_length = 3;
  from3.max_length = -1;
  EXPECT_EQ(ToMap(*MineMppm(s, from3), horizon), expected);
}

TEST(CrossValidationTest, ProteinAlphabetAgrees) {
  Rng rng(2003);
  Sequence s = *UniformRandomSequence(60, Alphabet::Protein(), rng);
  MinerConfig config;
  config.min_gap = 0;
  config.max_gap = 2;
  config.min_support_ratio = 0.002;
  config.start_length = 1;
  config.em_order = 2;
  config.max_length = 3;  // keep the 20^l enumeration tractable
  // Lengths 1..3 are far below l1 = 20 for L=60, so exact agreement holds.
  EXPECT_EQ(ToMap(*MineMppm(s, config)), ToMap(*MineEnumeration(s, config)));
}

}  // namespace
}  // namespace pgm
