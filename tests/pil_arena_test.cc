// Tests for the arena-backed PIL representation (core/pil_arena.h).
//
// Three layers:
//   1. Property tests pinning the equivalence contract: an arena span must
//      report exactly the SupportInfo that the heap-backed
//      PartialIndexList::FromEntries / TotalSupport path reports for the
//      same rows, and the CombinePrefixGroup kernel must emit exactly the
//      rows and support of PartialIndexList::Combine per candidate —
//      including saturating counts and positions at the
//      kMaxSequenceLength boundary.
//   2. Arena mechanics: the watermark/scratch protocol (Promote
//      compaction, TruncateToWatermark), capacity reuse across Clear()
//      (the ping-pong path), move semantics, and the growth counter that
//      makes the "zero steady-state allocations" claim checkable.
//   3. Ledger regression tests: every early-return path of the level-wise
//      engine — completion, memory-budget trip, candidate-cap trip,
//      expired deadline, pre-cancelled token — must leave the guard's
//      memory ledger at exactly zero once the run's arenas die. With
//      capacity-based charging this is structural (arena destructors
//      release everything they charged), and these tests keep it that way.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/candidate_index.h"
#include "core/gap.h"
#include "core/guard.h"
#include "core/miner.h"
#include "core/offset_counter.h"
#include "core/pil.h"
#include "core/pil_arena.h"
#include "seq/sequence.h"
#include "util/limits.h"
#include "util/random.h"
#include "util/saturating.h"

namespace pgm {
namespace {

// Sorted entries with strictly increasing positions and positive counts —
// the invariant PartialIndexList::FromEntries assert-checks. In saturating
// mode a fifth of the counts land within a few units of kSaturatedCount so
// both the clamp and the exact 128-bit sum paths are exercised.
std::vector<PilEntry> RandomEntries(Rng& rng, std::size_t max_len,
                                    bool saturating) {
  const std::size_t len = rng.UniformInt(max_len + 1);
  std::vector<PilEntry> entries;
  entries.reserve(len);
  std::uint32_t pos = static_cast<std::uint32_t>(rng.UniformInt(4));
  for (std::size_t i = 0; i < len; ++i) {
    std::uint64_t count;
    if (saturating && rng.Bernoulli(0.2)) {
      count = kSaturatedCount - rng.UniformInt(3);
    } else {
      count = 1 + rng.UniformInt(1000);
    }
    entries.push_back(PilEntry{pos, count});
    pos += static_cast<std::uint32_t>(1 + rng.UniformInt(4));
  }
  return entries;
}

// Copies `entries` into `arena` as a fresh span.
PilSpan SpanOf(PilArena& arena, const std::vector<PilEntry>& entries) {
  EXPECT_TRUE(arena.Reserve(arena.size() + entries.size()));
  PilSpan span = arena.Allocate(entries.size());
  std::copy(entries.begin(), entries.end(), arena.MutableRows(span));
  return span;
}

TEST(PilArenaSupportTest, SpanSupportMatchesPartialIndexList) {
  Rng rng(0x5eedc0de);
  PilArena arena;
  for (int round = 0; round < 200; ++round) {
    const bool saturating = (round % 2) == 1;
    const std::vector<PilEntry> entries = RandomEntries(rng, 64, saturating);
    const PilSpan span = SpanOf(arena, entries);
    const SupportInfo from_arena = arena.Support(span);
    const SupportInfo from_list =
        PartialIndexList::FromEntries(entries).TotalSupport();
    ASSERT_EQ(from_arena.count, from_list.count) << "round " << round;
    ASSERT_EQ(from_arena.saturated, from_list.saturated) << "round " << round;
  }
}

TEST(PilArenaSupportTest, SaturatedAndBoundaryRowsRoundTrip) {
  // One saturated row plus a row at the last indexable position: the span
  // must agree with the heap path that the sum clamps and stays clamped.
  const std::uint32_t last_pos =
      static_cast<std::uint32_t>(kMaxSequenceLength - 1);
  const std::vector<PilEntry> saturated = {
      PilEntry{0, kSaturatedCount},
      PilEntry{last_pos, 1},
  };
  // Two rows that only saturate when summed (each is below the clamp).
  const std::vector<PilEntry> overflowing = {
      PilEntry{7, kSaturatedCount / 2 + 1},
      PilEntry{last_pos, kSaturatedCount / 2 + 1},
  };
  PilArena arena;
  for (const auto& entries : {saturated, overflowing}) {
    const PilSpan span = SpanOf(arena, entries);
    const SupportInfo from_arena = arena.Support(span);
    const SupportInfo from_list =
        PartialIndexList::FromEntries(entries).TotalSupport();
    EXPECT_EQ(from_arena.count, kSaturatedCount);
    EXPECT_TRUE(from_arena.saturated);
    EXPECT_EQ(from_arena.count, from_list.count);
    EXPECT_EQ(from_arena.saturated, from_list.saturated);
  }
  // And an empty span reports zero support, like an empty list.
  const PilSpan empty = arena.Allocate(0);
  EXPECT_EQ(arena.Support(empty).count, 0u);
  EXPECT_FALSE(arena.Support(empty).saturated);
}

TEST(PilArenaSupportTest, CombinePrefixGroupMatchesCombinePerCandidate) {
  Rng rng(0xa11ce5);
  GroupJoinScratch scratch;
  for (int round = 0; round < 100; ++round) {
    const std::int64_t min_gap = rng.UniformRange(0, 3);
    const std::int64_t max_gap = min_gap + rng.UniformRange(0, 3);
    const GapRequirement gap = *GapRequirement::Create(min_gap, max_gap);
    const bool saturating = (round % 3) == 0;

    const std::vector<PilEntry> prefix = RandomEntries(rng, 48, saturating);
    const std::size_t group_size = 1 + rng.UniformInt(5);
    std::vector<std::vector<PilEntry>> suffix_entries;
    std::vector<GroupSuffix> suffixes;
    for (std::size_t s = 0; s < group_size; ++s) {
      suffix_entries.push_back(RandomEntries(rng, 48, saturating));
      suffixes.push_back(
          GroupSuffix{suffix_entries.back().data(), suffix_entries.back().size()});
    }

    // Combine emits at most one row per prefix row, so prefix.size() rows
    // per candidate is the executor's reservation bound too.
    std::vector<PilEntry> out_rows(group_size * prefix.size());
    std::vector<GroupOutput> outputs(group_size);
    for (std::size_t s = 0; s < group_size; ++s) {
      outputs[s].rows = out_rows.data() + s * prefix.size();
    }
    CombinePrefixGroup(prefix.data(), prefix.size(), gap, suffixes.data(),
                       outputs.data(), group_size, scratch);

    const PartialIndexList prefix_pil = PartialIndexList::FromEntries(prefix);
    for (std::size_t s = 0; s < group_size; ++s) {
      const PartialIndexList expected = PartialIndexList::Combine(
          prefix_pil, PartialIndexList::FromEntries(suffix_entries[s]), gap);
      ASSERT_EQ(outputs[s].len, expected.size())
          << "round " << round << " suffix " << s;
      for (std::size_t i = 0; i < expected.size(); ++i) {
        ASSERT_EQ(outputs[s].rows[i], expected.entries()[i])
            << "round " << round << " suffix " << s << " row " << i;
      }
      const SupportInfo expected_support = expected.TotalSupport();
      ASSERT_EQ(outputs[s].support.count, expected_support.count);
      ASSERT_EQ(outputs[s].support.saturated, expected_support.saturated);
    }
  }
}

TEST(PilArenaMechanicsTest, PromoteCompactsScratchOntoWatermark) {
  PilArena arena;
  // Retained level output: two rows, sealed below the watermark.
  SpanOf(arena, {PilEntry{1, 10}, PilEntry{2, 20}});
  arena.SealWatermark();
  ASSERT_EQ(arena.watermark(), 2u);

  // Three scratch spans; the middle one is abandoned (an infrequent
  // candidate), the other two are promoted in offset order.
  arena.BeginScratch();
  const PilSpan keep_a = SpanOf(arena, {PilEntry{3, 30}});
  SpanOf(arena, {PilEntry{4, 40}, PilEntry{5, 50}});  // abandoned
  const PilSpan keep_b = SpanOf(arena, {PilEntry{6, 60}, PilEntry{7, 70}});

  const PilSpan a = arena.Promote(keep_a);
  const PilSpan b = arena.Promote(keep_b);
  EXPECT_EQ(a.offset, 2u);
  EXPECT_EQ(b.offset, 3u);
  arena.TruncateToWatermark();
  arena.EndScratch();
  EXPECT_EQ(arena.size(), arena.watermark());
  EXPECT_EQ(arena.size(), 5u);

  // The promoted rows are dense and intact; the abandoned rows are gone.
  EXPECT_EQ(arena.Rows(a)[0], (PilEntry{3, 30}));
  EXPECT_EQ(arena.Rows(b)[0], (PilEntry{6, 60}));
  EXPECT_EQ(arena.Rows(b)[1], (PilEntry{7, 70}));
}

TEST(PilArenaMechanicsTest, ClearKeepsCapacityAndChargeForPingPong) {
  MiningGuard guard(ResourceLimits{});
  {
    PilArena arena(&guard);
    ASSERT_TRUE(arena.Reserve(1000));
    EXPECT_EQ(arena.capacity_bytes(), 1000 * sizeof(PilEntry));
    EXPECT_EQ(guard.memory_in_use_bytes(), arena.capacity_bytes());
    EXPECT_EQ(arena.growth_count(), 1u);

    arena.Clear();
    EXPECT_EQ(arena.size(), 0u);
    // Capacity and its ledger charge survive Clear — that is the whole
    // point of the ping-pong reuse.
    EXPECT_EQ(arena.capacity_bytes(), 1000 * sizeof(PilEntry));
    EXPECT_EQ(guard.memory_in_use_bytes(), arena.capacity_bytes());

    // Re-reserving within capacity is allocation-free.
    ASSERT_TRUE(arena.Reserve(500));
    ASSERT_TRUE(arena.Reserve(1000));
    EXPECT_EQ(arena.growth_count(), 1u);
    // Growing past capacity doubles (geometric growth).
    ASSERT_TRUE(arena.Reserve(1001));
    EXPECT_EQ(arena.growth_count(), 2u);
    EXPECT_EQ(arena.capacity_bytes(), 2000 * sizeof(PilEntry));
    EXPECT_EQ(guard.memory_in_use_bytes(), arena.capacity_bytes());
  }
  EXPECT_EQ(guard.memory_in_use_bytes(), 0u);
  EXPECT_EQ(guard.memory_peak_bytes(), 2000 * sizeof(PilEntry));
}

TEST(PilArenaMechanicsTest, MoveTransfersBufferAndLedgerCharge) {
  MiningGuard guard(ResourceLimits{});
  PilArena source(&guard);
  ASSERT_TRUE(source.Reserve(100));
  const PilSpan span = SpanOf(source, {PilEntry{9, 9}});
  const std::uint64_t charged = guard.memory_in_use_bytes();
  ASSERT_GT(charged, 0u);

  PilArena moved(std::move(source));
  EXPECT_EQ(guard.memory_in_use_bytes(), charged);
  EXPECT_EQ(source.capacity_bytes(), 0u);
  EXPECT_EQ(source.size(), 0u);
  EXPECT_EQ(moved.Rows(span)[0], (PilEntry{9, 9}));

  // Move-assignment over a charged arena releases the overwritten charge.
  PilArena other(&guard);
  ASSERT_TRUE(other.Reserve(5000));
  ASSERT_GT(guard.memory_in_use_bytes(), charged);
  other = std::move(moved);
  EXPECT_EQ(guard.memory_in_use_bytes(), charged);
  EXPECT_EQ(other.Rows(span)[0], (PilEntry{9, 9}));

  // Destroying the chargeless husk releases nothing further...
  { PilArena graveyard(std::move(source)); }
  EXPECT_EQ(guard.memory_in_use_bytes(), charged);
  // ...and destroying the live arena drains the ledger to zero.
  other = PilArena{};
  EXPECT_EQ(guard.memory_in_use_bytes(), 0u);
}

TEST(PilArenaMechanicsTest, ReserveTripReportsBudgetButKeepsCapacityUsable) {
  ResourceLimits limits;
  limits.pil_memory_budget_bytes = 64;
  MiningGuard guard(limits);
  PilArena arena(&guard);
  // The charge trips the budget, but per the "deliver what was paid for"
  // contract the capacity is really there: the caller may finish the
  // in-flight block before unwinding.
  EXPECT_FALSE(arena.Reserve(100));
  EXPECT_TRUE(guard.stopped());
  EXPECT_EQ(guard.reason(), TerminationReason::kMemoryBudget);
  const PilSpan span = arena.Allocate(100);
  arena.MutableRows(span)[99] = PilEntry{1, 1};
  EXPECT_EQ(arena.Rows(span)[99], (PilEntry{1, 1}));
  // A tripped guard also fails the no-growth Reserve path, so the block
  // loop observes the stop even when capacity already suffices.
  EXPECT_FALSE(arena.Reserve(10));
}

// --- Ledger regression tests -------------------------------------------
//
// Every exit path of the level-wise engine must return the guard's memory
// ledger to zero once the run's arenas are destroyed. The charge is
// capacity-based and released by arena destructors, so a leak here means a
// BuiltLevel or arena outlived the run (or a charge bypassed the arena).

Sequence LedgerSequence() {
  std::string text;
  for (int i = 0; i < 8; ++i) text += "ACGTTGCAACGGTTAC";
  return *Sequence::FromString(text, Alphabet::Dna());
}

MinerConfig LedgerConfig(std::int64_t threads) {
  MinerConfig config;
  config.min_gap = 0;
  config.max_gap = 2;
  config.min_support_ratio = 0.05;
  config.start_length = 1;
  config.threads = threads;
  return config;
}

struct LedgerRun {
  MiningResult result;
  std::uint64_t in_use_after = 0;
  std::uint64_t peak = 0;
};

LedgerRun RunLevelwiseWith(const ResourceLimits& limits,
                           const CancelToken* cancel, std::int64_t threads) {
  const Sequence sequence = LedgerSequence();
  const MinerConfig config = LedgerConfig(threads);
  const GapRequirement gap =
      *GapRequirement::Create(config.min_gap, config.max_gap);
  MiningGuard guard(limits, cancel);
  OffsetCounter counter(static_cast<std::int64_t>(sequence.size()), gap);
  StatusOr<MiningResult> result =
      internal::RunLevelwise(sequence, config, counter, counter.l1(),
                             internal::BuiltLevel{}, guard);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  LedgerRun run;
  run.result = *std::move(result);
  run.in_use_after = guard.memory_in_use_bytes();
  run.peak = guard.memory_peak_bytes();
  return run;
}

TEST(ArenaLedgerTest, CompletedRunDrainsLedgerToZero) {
  for (std::int64_t threads : {std::int64_t{1}, std::int64_t{4}}) {
    const LedgerRun run = RunLevelwiseWith(ResourceLimits{}, nullptr, threads);
    EXPECT_EQ(run.result.termination, TerminationReason::kCompleted);
    EXPECT_GT(run.result.patterns.size(), 0u);
    EXPECT_EQ(run.in_use_after, 0u) << "threads=" << threads;
    EXPECT_GT(run.peak, 0u);
  }
}

TEST(ArenaLedgerTest, MemoryBudgetTripDrainsLedgerToZero) {
  ResourceLimits limits;
  limits.pil_memory_budget_bytes = 256;  // trips on the first level arena
  for (std::int64_t threads : {std::int64_t{1}, std::int64_t{4}}) {
    const LedgerRun run = RunLevelwiseWith(limits, nullptr, threads);
    EXPECT_EQ(run.result.termination, TerminationReason::kMemoryBudget);
    EXPECT_EQ(run.in_use_after, 0u) << "threads=" << threads;
    // The trip happened because a charge exceeded the budget, so the peak
    // must show the overshooting charge.
    EXPECT_GT(run.peak, limits.pil_memory_budget_bytes);
  }
}

TEST(ArenaLedgerTest, CandidateCapTripDrainsLedgerToZero) {
  ResourceLimits limits;
  limits.max_level_candidates = 1;  // trips at the first level's charge
  for (std::int64_t threads : {std::int64_t{1}, std::int64_t{4}}) {
    const LedgerRun run = RunLevelwiseWith(limits, nullptr, threads);
    EXPECT_EQ(run.result.termination, TerminationReason::kCandidateCap);
    EXPECT_EQ(run.in_use_after, 0u) << "threads=" << threads;
  }
}

TEST(ArenaLedgerTest, ExpiredDeadlineDrainsLedgerToZero) {
  ResourceLimits limits;
  limits.deadline_ms = 0;  // expired before the first check
  for (std::int64_t threads : {std::int64_t{1}, std::int64_t{4}}) {
    const LedgerRun run = RunLevelwiseWith(limits, nullptr, threads);
    EXPECT_EQ(run.result.termination, TerminationReason::kDeadline);
    EXPECT_EQ(run.in_use_after, 0u) << "threads=" << threads;
  }
}

TEST(ArenaLedgerTest, PreCancelledTokenDrainsLedgerToZero) {
  CancelToken cancel;
  cancel.RequestCancel();
  for (std::int64_t threads : {std::int64_t{1}, std::int64_t{4}}) {
    const LedgerRun run = RunLevelwiseWith(ResourceLimits{}, &cancel, threads);
    EXPECT_EQ(run.result.termination, TerminationReason::kCancelled);
    EXPECT_EQ(run.in_use_after, 0u) << "threads=" << threads;
  }
}

TEST(ArenaLedgerTest, BuiltLevelCarriesChargeAndReleasesOnDestruction) {
  const Sequence sequence = LedgerSequence();
  const GapRequirement gap = *GapRequirement::Create(0, 2);
  MiningGuard guard(ResourceLimits{});
  {
    internal::BuiltLevel level =
        internal::BuildAllPatternsOfLength(sequence, gap, 2, &guard);
    EXPECT_FALSE(level.entries.empty());
    EXPECT_EQ(guard.memory_in_use_bytes(), level.arena.capacity_bytes());
    EXPECT_GT(level.arena.capacity_bytes(), 0u);
  }
  EXPECT_EQ(guard.memory_in_use_bytes(), 0u);
}

// The "zero allocations in the join loop at steady state" claim, pinned:
// once the ping-pong arenas have grown to the run's high-water mark, later
// levels reuse that capacity. A completed run's arenas must report far
// fewer growths than levels — here, the seed run's growth counts stabilize
// after re-running the same level joins on a warmed arena.
TEST(ArenaLedgerTest, WarmedArenaStopsGrowing) {
  PilArena arena;
  ASSERT_TRUE(arena.Reserve(4096));
  const std::uint64_t warm_growths = arena.growth_count();
  for (int level = 0; level < 16; ++level) {
    arena.Clear();
    ASSERT_TRUE(arena.Reserve(1 + (level * 251) % 4096));
    arena.BeginScratch();
    const PilSpan span = arena.Allocate(64);
    arena.MutableRows(span)[0] = PilEntry{0, 1};
    arena.Promote(span);
    arena.TruncateToWatermark();
    arena.EndScratch();
  }
  EXPECT_EQ(arena.growth_count(), warm_growths);
}

}  // namespace
}  // namespace pgm
