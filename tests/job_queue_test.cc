// The admission queue: bounded capacity, deterministic shedding, FIFO
// order, close-and-drain semantics, and producer/consumer races.

#include "serve/queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace pgm {
namespace {

MiningJob JobNamed(const std::string& input) {
  MiningJob job;
  job.input = input;
  return job;
}

TEST(JobQueueTest, PushPopIsFifo) {
  JobQueue queue(4);
  EXPECT_EQ(queue.TryPush(JobNamed("a")), JobQueue::PushResult::kAccepted);
  EXPECT_EQ(queue.TryPush(JobNamed("b")), JobQueue::PushResult::kAccepted);
  MiningJob job;
  ASSERT_TRUE(queue.Pop(&job));
  EXPECT_EQ(job.input, "a");
  ASSERT_TRUE(queue.Pop(&job));
  EXPECT_EQ(job.input, "b");
}

TEST(JobQueueTest, ShedsDeterministicallyAtCapacity) {
  JobQueue queue(2);
  EXPECT_EQ(queue.TryPush(JobNamed("a")), JobQueue::PushResult::kAccepted);
  EXPECT_EQ(queue.TryPush(JobNamed("b")), JobQueue::PushResult::kAccepted);
  // The bound is hard: every push past capacity is rejected immediately, no
  // matter how many times it is retried without a pop in between.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(queue.TryPush(JobNamed("over")), JobQueue::PushResult::kFull);
  }
  EXPECT_EQ(queue.size(), 2u);
  // Popping frees exactly one admission slot.
  MiningJob job;
  ASSERT_TRUE(queue.Pop(&job));
  EXPECT_EQ(queue.TryPush(JobNamed("c")), JobQueue::PushResult::kAccepted);
  EXPECT_EQ(queue.TryPush(JobNamed("d")), JobQueue::PushResult::kFull);
}

TEST(JobQueueTest, ZeroCapacityIsPinnedToOne) {
  JobQueue queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
  EXPECT_EQ(queue.TryPush(JobNamed("a")), JobQueue::PushResult::kAccepted);
  EXPECT_EQ(queue.TryPush(JobNamed("b")), JobQueue::PushResult::kFull);
}

TEST(JobQueueTest, CloseRejectsPushesButDrainsQueued) {
  JobQueue queue(4);
  EXPECT_EQ(queue.TryPush(JobNamed("a")), JobQueue::PushResult::kAccepted);
  EXPECT_EQ(queue.TryPush(JobNamed("b")), JobQueue::PushResult::kAccepted);
  queue.Close();
  EXPECT_EQ(queue.TryPush(JobNamed("late")), JobQueue::PushResult::kClosed);
  MiningJob job;
  ASSERT_TRUE(queue.Pop(&job));
  EXPECT_EQ(job.input, "a");
  ASSERT_TRUE(queue.Pop(&job));
  EXPECT_EQ(job.input, "b");
  EXPECT_FALSE(queue.Pop(&job));  // drained: returns without blocking
}

TEST(JobQueueTest, CloseWakesBlockedConsumers) {
  JobQueue queue(4);
  std::atomic<int> drained{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < 4; ++i) {
    consumers.emplace_back([&queue, &drained] {
      MiningJob job;
      while (queue.Pop(&job)) {
      }
      drained.fetch_add(1);
    });
  }
  // All four block on the empty queue; Close must wake every one.
  queue.Close();
  for (std::thread& t : consumers) t.join();
  EXPECT_EQ(drained.load(), 4);
}

TEST(JobQueueTest, ConcurrentProducersConsumersLoseNothing) {
  JobQueue queue(16);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  std::atomic<int> accepted{0};
  std::atomic<int> shed{0};
  std::atomic<int> popped{0};

  std::vector<std::thread> consumers;
  for (int i = 0; i < 3; ++i) {
    consumers.emplace_back([&queue, &popped] {
      MiningJob job;
      while (queue.Pop(&job)) popped.fetch_add(1);
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, &accepted, &shed] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (queue.TryPush(JobNamed("x")) == JobQueue::PushResult::kAccepted) {
          accepted.fetch_add(1);
        } else {
          shed.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  queue.Close();
  for (std::thread& t : consumers) t.join();

  // Conservation: every admitted job is popped exactly once, and every
  // submission was either admitted or shed.
  EXPECT_EQ(popped.load(), accepted.load());
  EXPECT_EQ(accepted.load() + shed.load(), kProducers * kPerProducer);
}

}  // namespace
}  // namespace pgm
