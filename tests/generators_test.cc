#include "datagen/generators.h"

#include <gtest/gtest.h>

#include "seq/stats.h"
#include "util/random.h"

namespace pgm {
namespace {

TEST(UniformGeneratorTest, LengthAndAlphabet) {
  Rng rng(1);
  Sequence s = *UniformRandomSequence(500, Alphabet::Dna(), rng);
  EXPECT_EQ(s.size(), 500u);
  for (Symbol sym : s.symbols()) EXPECT_LT(sym, 4);
}

TEST(UniformGeneratorTest, ZeroLength) {
  Rng rng(2);
  Sequence s = *UniformRandomSequence(0, Alphabet::Dna(), rng);
  EXPECT_TRUE(s.empty());
}

TEST(UniformGeneratorTest, DeterministicGivenSeed) {
  Rng a(3), b(3);
  Sequence sa = *UniformRandomSequence(100, Alphabet::Dna(), a);
  Sequence sb = *UniformRandomSequence(100, Alphabet::Dna(), b);
  EXPECT_EQ(sa.ToString(), sb.ToString());
}

TEST(UniformGeneratorTest, RoughlyUniformComposition) {
  Rng rng(4);
  Sequence s = *UniformRandomSequence(40'000, Alphabet::Dna(), rng);
  CompositionStats stats = ComputeComposition(s);
  for (double f : stats.frequencies) EXPECT_NEAR(f, 0.25, 0.02);
}

TEST(WeightedGeneratorTest, FollowsWeights) {
  Rng rng(5);
  Sequence s = *WeightedRandomSequence(40'000, Alphabet::Dna(),
                                       {0.4, 0.1, 0.1, 0.4}, rng);
  CompositionStats stats = ComputeComposition(s);
  EXPECT_NEAR(stats.frequencies[0], 0.4, 0.02);
  EXPECT_NEAR(stats.frequencies[1], 0.1, 0.02);
  EXPECT_NEAR(stats.frequencies[2], 0.1, 0.02);
  EXPECT_NEAR(stats.frequencies[3], 0.4, 0.02);
}

TEST(WeightedGeneratorTest, ZeroWeightNeverDrawn) {
  Rng rng(6);
  Sequence s = *WeightedRandomSequence(5'000, Alphabet::Dna(),
                                       {0.5, 0.0, 0.0, 0.5}, rng);
  CompositionStats stats = ComputeComposition(s);
  EXPECT_EQ(stats.counts[1], 0u);
  EXPECT_EQ(stats.counts[2], 0u);
}

TEST(WeightedGeneratorTest, UnnormalizedWeightsAccepted) {
  Rng rng(7);
  Sequence s = *WeightedRandomSequence(20'000, Alphabet::Dna(),
                                       {3.0, 1.0, 1.0, 3.0}, rng);
  CompositionStats stats = ComputeComposition(s);
  EXPECT_NEAR(stats.frequencies[0], 3.0 / 8, 0.02);
}

TEST(WeightedGeneratorTest, ValidatesWeights) {
  Rng rng(8);
  EXPECT_FALSE(
      WeightedRandomSequence(10, Alphabet::Dna(), {0.5, 0.5}, rng).ok());
  EXPECT_FALSE(WeightedRandomSequence(10, Alphabet::Dna(),
                                      {0.5, 0.5, 0.5, -0.1}, rng)
                   .ok());
  EXPECT_FALSE(
      WeightedRandomSequence(10, Alphabet::Dna(), {0, 0, 0, 0}, rng).ok());
}

}  // namespace
}  // namespace pgm
