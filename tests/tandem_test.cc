#include "analysis/tandem.h"

#include <gtest/gtest.h>

namespace pgm {
namespace {

Sequence Seq(const char* text) {
  return *Sequence::FromString(text, Alphabet::Dna());
}

TEST(TandemTest, SimplePeriodOneRun) {
  auto repeats = *FindTandemRepeats(Seq("CAAAAG"), 3);
  ASSERT_EQ(repeats.size(), 1u);
  EXPECT_EQ(repeats[0], (TandemRepeat{1, 1, 4}));
  EXPECT_EQ(repeats[0].copies(), 4);
}

TEST(TandemTest, PeriodTwoRepeat) {
  auto repeats = *FindTandemRepeats(Seq("GATATATC"), 3);
  ASSERT_EQ(repeats.size(), 1u);
  EXPECT_EQ(repeats[0].start, 1);
  EXPECT_EQ(repeats[0].period, 2);
  EXPECT_EQ(repeats[0].length, 6);  // ATATAT
  EXPECT_EQ(repeats[0].copies(), 3);
}

TEST(TandemTest, ReportsOnlyMinimalPeriod) {
  // AAAA is a period-1 repeat; it must not also appear as period 2.
  auto repeats = *FindTandemRepeats(Seq("AAAA"), 3);
  ASSERT_EQ(repeats.size(), 1u);
  EXPECT_EQ(repeats[0].period, 1);
}

TEST(TandemTest, MinCopiesFilters) {
  // ATAT has 2 copies of AT; with min_copies=3 it disappears.
  auto two = *FindTandemRepeats(Seq("GATATG"), 3, 2);
  ASSERT_EQ(two.size(), 1u);
  auto three = *FindTandemRepeats(Seq("GATATG"), 3, 3);
  EXPECT_TRUE(three.empty());
}

TEST(TandemTest, PartialFinalCopyExtendsLength) {
  // ATGATGA: period 3, length 7 (2 full copies + 1 extra matching char).
  auto repeats = *FindTandemRepeats(Seq("ATGATGA"), 4);
  ASSERT_EQ(repeats.size(), 1u);
  EXPECT_EQ(repeats[0], (TandemRepeat{0, 3, 7}));
  EXPECT_EQ(repeats[0].copies(), 2);
}

TEST(TandemTest, MultipleRepeats) {
  auto repeats = *FindTandemRepeats(Seq("AAACGTGTGTCAA"), 3);
  // AAA at 0 (period 1), GTGTGT at 4 (period 2), AA at 11 (period 1).
  ASSERT_EQ(repeats.size(), 3u);
  EXPECT_EQ(repeats[0], (TandemRepeat{0, 1, 3}));
  EXPECT_EQ(repeats[1], (TandemRepeat{4, 2, 6}));
  EXPECT_EQ(repeats[2], (TandemRepeat{11, 1, 2}));
}

TEST(TandemTest, NoRepeatsInAperiodicSequence) {
  EXPECT_TRUE(FindTandemRepeats(Seq("ACGT"), 2)->empty());
}

TEST(TandemTest, PeriodCapLimitsDetection) {
  // ACGACG is period 3; with max_period=2 it is invisible.
  EXPECT_TRUE(FindTandemRepeats(Seq("ACGACG"), 2)->empty());
  EXPECT_EQ(FindTandemRepeats(Seq("ACGACG"), 3)->size(), 1u);
}

TEST(TandemTest, ValidatesArguments) {
  EXPECT_FALSE(FindTandemRepeats(Seq("ACGT"), 0).ok());
  EXPECT_FALSE(FindTandemRepeats(Seq("ACGT"), 2, 1).ok());
}

TEST(TandemTest, EmptyAndTinySequences) {
  Sequence empty = *Sequence::FromString("", Alphabet::Dna());
  EXPECT_TRUE(FindTandemRepeats(empty, 3)->empty());
  EXPECT_TRUE(FindTandemRepeats(Seq("A"), 3)->empty());
  EXPECT_EQ(FindTandemRepeats(Seq("AA"), 3)->size(), 1u);
}

TEST(TandemTest, SortedByStartThenPeriod) {
  auto repeats = *FindTandemRepeats(Seq("TTTACACACGGG"), 4);
  for (std::size_t i = 1; i < repeats.size(); ++i) {
    const bool ordered =
        repeats[i - 1].start < repeats[i].start ||
        (repeats[i - 1].start == repeats[i].start &&
         repeats[i - 1].period < repeats[i].period);
    EXPECT_TRUE(ordered);
  }
}

}  // namespace
}  // namespace pgm
